package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/synergy-ft/synergy/internal/chaos"
	"github.com/synergy-ft/synergy/internal/invariant"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/obs"
)

// CheckStatus is one expectation's verdict.
type CheckStatus string

// Check verdicts. Skip marks an expectation that is not meaningful in the
// report's execution path (probe checks in the simulator, replica
// convergence live): the spec stays valid in both worlds without lying about
// what was verified.
const (
	Pass CheckStatus = "pass"
	Fail CheckStatus = "fail"
	Skip CheckStatus = "skip"
)

// CheckResult is one evaluated expectation.
type CheckResult struct {
	// Name is the expectation's spec key (e.g. "recovery_line_clean").
	Name string `json:"name"`
	// Status is the verdict.
	Status CheckStatus `json:"status"`
	// Detail explains failures and skips (empty on plain passes).
	Detail string `json:"detail,omitempty"`
}

// RunStats carries the run's headline numbers into the report.
type RunStats struct {
	MsgsSent        uint64            `json:"msgs_sent"`
	MsgsDelivered   uint64            `json:"msgs_delivered"`
	StableRounds    map[string]uint64 `json:"stable_rounds,omitempty"`
	HWFaults        int               `json:"hw_faults"`
	SWRecoveries    int               `json:"sw_recoveries"`
	ActiveC1        string            `json:"active_c1"`
	ChaosFrames     uint64            `json:"chaos_frames,omitempty"`
	FaultsInjected  map[string]uint64 `json:"faults_injected,omitempty"`
	ProbesSent      uint64            `json:"probes_sent,omitempty"`
	ProbesDelivered uint64            `json:"probes_delivered,omitempty"`
	// GossipMaxFanIn is the worst per-node dissemination fan-in of a
	// cluster run (zero for three-process scenarios).
	GossipMaxFanIn float64 `json:"gossip_max_fanin,omitempty"`
	// WallSeconds is the live run's measured wall time including the
	// probe drain (zero in the simulator, whose duration is exact).
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// Report is one scenario execution's outcome in one mode.
type Report struct {
	Name     string        `json:"name"`
	Mode     string        `json:"mode"`
	Scheme   string        `json:"scheme"`
	Seed     int64         `json:"seed"`
	Duration Duration      `json:"duration"`
	Passed   bool          `json:"passed"`
	Checks   []CheckResult `json:"checks"`
	Stats    RunStats      `json:"stats"`
}

// EncodeJSON renders the report deterministically (fixed field order, sorted
// maps): two runs of one spec in the simulator produce byte-identical
// output.
func (r *Report) EncodeJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Failures lists the failed checks.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for _, c := range r.Checks {
		if c.Status == Fail {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders a one-line human verdict.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	var failed []string
	for _, c := range r.Failures() {
		failed = append(failed, c.Name)
	}
	if len(failed) > 0 {
		return fmt.Sprintf("%s %s [%s]: %s", verdict, r.Name, r.Mode, strings.Join(failed, ", "))
	}
	return fmt.Sprintf("%s %s [%s]: %d checks", verdict, r.Name, r.Mode, len(r.Checks))
}

// outcome is what a runner observed; evaluate turns it into a Report. Both
// runners fill the same struct, so an expectation means exactly one thing.
type outcome struct {
	mode       string
	failed     bool
	failReason string

	line    invariant.Line
	lineErr error

	// stableRounds is keyed by display name (P1act…, or C1/C1s… for
	// clusters), the key the report and the min_stable_rounds floor use.
	stableRounds map[string]uint64
	converged    *bool // simulator only (requires quiescence)
	activeC1     msg.ProcID
	// activeName overrides activeC1's rendering when the run's processes
	// are cluster nodes rather than the fixed three.
	activeName string

	// fanin/faninBound carry a cluster run's dissemination fan-in and its
	// fanout·rounds bound; faninKnown distinguishes "not a cluster".
	fanin, faninBound float64
	faninKnown        bool

	hwFaults     int
	swRecoveries int

	chaosStats *chaos.Stats
	crcDrops   *uint64 // live TCP only
	snapshot   obs.Snapshot

	sent, delivered uint64

	probesSent, probesDelivered uint64
	wallSeconds                 float64
}

// familyTotal sums every series of one metric family.
func familyTotal(s obs.Snapshot, name string) float64 {
	var total float64
	for _, f := range s.Families {
		if f.Name != name {
			continue
		}
		for _, ss := range f.Series {
			total += ss.Value
		}
	}
	return total
}

// evaluate runs the spec's expectations over what the runner observed.
func evaluate(spec *Spec, o *outcome) *Report {
	activeName := o.activeName
	if activeName == "" {
		activeName = o.activeC1.String()
	}
	r := &Report{
		Name:     spec.Name,
		Mode:     o.mode,
		Scheme:   spec.SchemeName(),
		Seed:     spec.Seed,
		Duration: spec.Duration,
		Stats: RunStats{
			MsgsSent:        o.sent,
			MsgsDelivered:   o.delivered,
			HWFaults:        o.hwFaults,
			SWRecoveries:    o.swRecoveries,
			ActiveC1:        activeName,
			ProbesSent:      o.probesSent,
			ProbesDelivered: o.probesDelivered,
			GossipMaxFanIn:  o.fanin,
			WallSeconds:     o.wallSeconds,
		},
	}
	if len(o.stableRounds) > 0 {
		r.Stats.StableRounds = make(map[string]uint64, len(o.stableRounds))
		for name, n := range o.stableRounds {
			r.Stats.StableRounds[name] = n
		}
	}
	if o.chaosStats != nil {
		r.Stats.ChaosFrames = o.chaosStats.Frames
		r.Stats.FaultsInjected = map[string]uint64{
			"drop":      o.chaosStats.Dropped,
			"partition": o.chaosStats.Partitioned,
			"duplicate": o.chaosStats.Duplicated,
			"corrupt":   o.chaosStats.Corrupted,
			"delay":     o.chaosStats.Delayed,
		}
		if o.chaosStats.FsyncStalled > 0 {
			r.Stats.FaultsInjected["fsync-stall"] = o.chaosStats.FsyncStalled
		}
		for kind, n := range map[string]uint64{
			"disk-write-err": o.chaosStats.DiskWriteErrs,
			"disk-torn":      o.chaosStats.DiskTornWrites,
			"disk-sync-err":  o.chaosStats.DiskSyncErrs,
			"disk-corrupt":   o.chaosStats.DiskReadCorrupts,
		} {
			if n > 0 {
				r.Stats.FaultsInjected[kind] = n
			}
		}
	}

	e := spec.Expect
	add := func(name string, status CheckStatus, detail string) {
		r.Checks = append(r.Checks, CheckResult{Name: name, Status: status, Detail: detail})
	}
	check := func(name string, ok bool, detail string) {
		if ok {
			add(name, Pass, "")
		} else {
			add(name, Fail, detail)
		}
	}

	if e.NoFailure != nil {
		want := *e.NoFailure
		got := !o.failed
		check("no_failure", got == want, fmt.Sprintf("failed=%v (%s), want failed=%v", o.failed, o.failReason, !want))
	}
	if e.RecoveryLineClean != nil {
		switch {
		case o.lineErr != nil:
			check("recovery_line_clean", !*e.RecoveryLineClean, fmt.Sprintf("no recovery line: %v", o.lineErr))
		default:
			vs := o.line.Check()
			var kinds []string
			for _, v := range vs {
				kinds = append(kinds, v.String())
			}
			check("recovery_line_clean", (len(vs) == 0) == *e.RecoveryLineClean,
				fmt.Sprintf("%d violation(s): %s", len(vs), strings.Join(kinds, "; ")))
		}
	}
	if e.MinStableRounds != nil {
		names := make([]string, 0, len(o.stableRounds))
		for name := range o.stableRounds {
			names = append(names, name)
		}
		sort.Strings(names)
		var lagging []string
		for _, name := range names {
			if n := o.stableRounds[name]; n < *e.MinStableRounds {
				lagging = append(lagging, fmt.Sprintf("%s=%d", name, n))
			}
		}
		check("min_stable_rounds", len(lagging) == 0,
			fmt.Sprintf("below floor %d: %s", *e.MinStableRounds, strings.Join(lagging, ", ")))
	}
	if e.ReplicasConverged != nil {
		if o.converged == nil {
			add("replicas_converged", Skip, "requires quiescence; simulator only")
		} else {
			check("replicas_converged", *o.converged == *e.ReplicasConverged,
				fmt.Sprintf("converged=%v, want %v", *o.converged, *e.ReplicasConverged))
		}
	}
	if e.SWRecoveries != nil {
		check("sw_recoveries", o.swRecoveries == *e.SWRecoveries,
			fmt.Sprintf("completed %d software recoveries, want %d", o.swRecoveries, *e.SWRecoveries))
	}
	if e.HWFaults != nil {
		check("hw_faults", o.hwFaults == *e.HWFaults,
			fmt.Sprintf("recovered %d hardware faults, want %d", o.hwFaults, *e.HWFaults))
	}
	if e.Active != "" {
		check("active", activeName == e.Active,
			fmt.Sprintf("component 1 active is %s, want %s", activeName, e.Active))
	}
	if len(e.FaultKinds) > 0 {
		evaluateFaultKinds(spec, o, add, check)
	}
	if e.FaultCountersMatch != nil {
		evaluateCounters(o, add, check)
	}
	if e.CheckpointsRecorded != nil {
		stable := familyTotal(o.snapshot, "synergy_tb_stable_commits_total")
		volatile := familyTotal(o.snapshot, "synergy_mdcd_checkpoints_total")
		check("checkpoints_recorded", (stable > 0 && volatile > 0) == *e.CheckpointsRecorded,
			fmt.Sprintf("stable commits=%v volatile checkpoints=%v", stable, volatile))
	}
	if e.MaxBlocking > 0 {
		evaluateBlocking(e.MaxBlocking.D(), o, check)
	}
	if e.MinProbeRate > 0 {
		if o.mode != ModeLive {
			add("min_probe_rate", Skip, "probes are live-transport traffic")
		} else {
			achieved := 0.0
			if o.wallSeconds > 0 {
				achieved = float64(o.probesDelivered) / o.wallSeconds
			}
			check("min_probe_rate", achieved >= e.MinProbeRate,
				fmt.Sprintf("achieved %.0f probes/sec < floor %.0f", achieved, e.MinProbeRate))
		}
	}
	if e.AllProbesDelivered != nil {
		if o.mode != ModeLive {
			add("all_probes_delivered", Skip, "probes are live-transport traffic")
		} else {
			check("all_probes_delivered", (o.probesDelivered == o.probesSent) == *e.AllProbesDelivered,
				fmt.Sprintf("delivered %d of %d probes after drain", o.probesDelivered, o.probesSent))
		}
	}
	if e.GossipFaninBounded != nil {
		if !o.faninKnown {
			add("gossip_fanin_bounded", Skip, "requires a cluster topology")
		} else {
			bounded := o.fanin > 0 && o.fanin <= o.faninBound
			check("gossip_fanin_bounded", bounded == *e.GossipFaninBounded,
				fmt.Sprintf("max per-node fan-in %.2f against fanout·rounds bound %.0f", o.fanin, o.faninBound))
		}
	}

	r.Passed = true
	for _, c := range r.Checks {
		if c.Status == Fail {
			r.Passed = false
		}
	}
	return r
}

// evaluateFaultKinds asserts each listed injected-fault kind actually fired.
func evaluateFaultKinds(spec *Spec, o *outcome,
	add func(string, CheckStatus, string), check func(string, bool, string)) {
	if o.chaosStats == nil {
		check("fault_kinds", false, "no fault injector ran")
		return
	}
	st := o.chaosStats
	var silent, skipped []string
	for _, k := range spec.Expect.FaultKinds {
		fired, known := map[string]bool{
			"drop":           st.Dropped > 0,
			"duplicate":      st.Duplicated > 0,
			"corrupt":        st.Corrupted > 0,
			"delay":          st.Delayed > 0,
			"partition":      st.Partitioned > 0,
			"fsync-stall":    st.FsyncStalled > 0,
			"disk-write-err": st.DiskWriteErrs > 0,
			"disk-torn":      st.DiskTornWrites > 0,
			"disk-sync-err":  st.DiskSyncErrs > 0,
			"disk-corrupt":   st.DiskReadCorrupts > 0,
		}[k], true
		if k == "crc-catch" {
			if o.crcDrops == nil {
				skipped = append(skipped, k)
				continue
			}
			fired = *o.crcDrops > 0
		} else if storageFaultKind(k) && o.mode == ModeSim {
			// The simulator has no storage layer to stall or fault.
			skipped = append(skipped, k)
			continue
		}
		if known && !fired {
			silent = append(silent, k)
		}
	}
	sort.Strings(skipped)
	if len(skipped) > 0 && len(silent) == 0 {
		add("fault_kinds", Pass, fmt.Sprintf("skipped in %s mode: %s", o.mode, strings.Join(skipped, ", ")))
		return
	}
	check("fault_kinds", len(silent) == 0,
		fmt.Sprintf("kinds never fired: %s (run longer or raise rates)", strings.Join(silent, ", ")))
}

// storageFaultKind reports whether the kind fires in the storage layer,
// which only the live stack has (the simulator keeps stable storage in
// memory).
func storageFaultKind(k string) bool {
	return k == "fsync-stall" || strings.HasPrefix(k, "disk-")
}

// evaluateCounters cross-checks the obs fault counters against the
// injector's stats: both are fed by the same verdicts, so they must agree
// exactly. Disk-fault counters live on a per-proc storage family
// (synergy_storage_injected_faults_total), so each kind sums its series.
func evaluateCounters(o *outcome,
	add func(string, CheckStatus, string), check func(string, bool, string)) {
	if o.chaosStats == nil {
		add("fault_counters_match", Skip, "no fault injector ran")
		return
	}
	st := o.chaosStats
	kindTotal := func(family, kind string) float64 {
		var total float64
		want := `kind="` + kind + `"`
		for _, f := range o.snapshot.Families {
			if f.Name != family {
				continue
			}
			for _, s := range f.Series {
				if strings.Contains(s.Labels, want) {
					total += s.Value
				}
			}
		}
		return total
	}
	var off []string
	for _, chk := range []struct {
		family, kind string
		want         uint64
	}{
		{"synergy_chaos_injected_faults_total", "drop", st.Dropped},
		{"synergy_chaos_injected_faults_total", "partition", st.Partitioned},
		{"synergy_chaos_injected_faults_total", "duplicate", st.Duplicated},
		{"synergy_chaos_injected_faults_total", "corrupt", st.Corrupted},
		{"synergy_chaos_injected_faults_total", "delay", st.Delayed},
		{"synergy_chaos_injected_faults_total", "fsync-stall", st.FsyncStalled},
		{"synergy_storage_injected_faults_total", "disk-write-err", st.DiskWriteErrs},
		{"synergy_storage_injected_faults_total", "disk-torn", st.DiskTornWrites},
		{"synergy_storage_injected_faults_total", "disk-sync-err", st.DiskSyncErrs},
		{"synergy_storage_injected_faults_total", "disk-corrupt", st.DiskReadCorrupts},
	} {
		if got := kindTotal(chk.family, chk.kind); got != float64(chk.want) {
			off = append(off, fmt.Sprintf("%s: obs=%v injector=%d", chk.kind, got, chk.want))
		}
	}
	frames := familyTotal(o.snapshot, "synergy_chaos_frames_total")
	if frames != float64(st.Frames) {
		off = append(off, fmt.Sprintf("frames: obs=%v injector=%d", frames, st.Frames))
	}
	check("fault_counters_match", len(off) == 0, strings.Join(off, "; "))
}

// evaluateBlocking asserts every observed τ(b) fits under the bound, read
// from the blocking histogram's cumulative buckets: the first bucket whose
// bound reaches the limit must already hold every observation.
func evaluateBlocking(limit time.Duration, o *outcome, check func(string, bool, string)) {
	limitSec := limit.Seconds()
	var total, under uint64
	seen := false
	for _, f := range o.snapshot.Families {
		if f.Name != "synergy_tb_blocking_seconds" {
			continue
		}
		for _, s := range f.Series {
			seen = true
			total += s.Count
			// Buckets are cumulative; the tightest bound at or above the
			// limit tells how many observations fit under it.
			best := uint64(0)
			for _, b := range s.Buckets {
				if b.UpperBound >= limitSec || math.IsInf(b.UpperBound, 1) {
					best = b.Count
					break
				}
			}
			under += best
		}
	}
	if !seen || total == 0 {
		check("max_blocking", true, "")
		return
	}
	check("max_blocking", under == total,
		fmt.Sprintf("%d of %d blocking periods exceed %v", total-under, total, limit))
}
