package scenario

import (
	"fmt"

	"github.com/synergy-ft/synergy/internal/chaos"
	"github.com/synergy-ft/synergy/internal/coord"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/obs"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// RunSim executes the spec in the discrete-event simulator. The run is a
// pure function of the spec: virtual time, seeded randomness and fixed
// iteration orders make the returned report byte-identical across
// executions, machines and worker counts.
func RunSim(spec *Spec) (*Report, error) {
	if spec.Topology.Cluster != nil {
		return RunClusterSim(spec)
	}
	scheme, err := spec.SchemeID()
	if err != nil {
		return nil, err
	}
	chaosSpec, err := spec.ChaosSpec()
	if err != nil {
		return nil, err
	}
	tmin, tmax := spec.Topology.Delays()
	reg := obs.NewRegistry()

	cfg := coord.DefaultConfig(scheme, spec.Seed)
	cfg.Clock = vtime.ClockConfig{MaxDeviation: spec.Topology.Deviation(), DriftRate: spec.Topology.Drift()}
	cfg.Net.MinDelay, cfg.Net.MaxDelay = tmin, tmax
	cfg.CheckpointInterval = spec.Topology.Interval()
	cfg.Workload1 = spec.Workload.Load(spec.Workload.Component1)
	cfg.Workload2 = spec.Workload.Load(spec.Workload.Component2)
	cfg.Test = spec.Test()
	cfg.Chaos = chaosSpec
	cfg.Obs = reg
	// Size the retained stable history to the longest scheduled downtime,
	// so survivors still hold the eventual common recovery round.
	for _, c := range chaosSpec.Crashes {
		if c.Downtime > cfg.MaxRepair {
			cfg.MaxRepair = c.Downtime
		}
	}

	sys, err := coord.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	eng := sys.Engine()

	// Schedule crashes through the hardware fault path: CrashNode fails
	// the host, RepairNode reboots it and runs system-wide recovery.
	var schedErrs []string
	for i, c := range chaosSpec.Crashes {
		node, ok := sys.Network().NodeOf(c.Victim)
		if !ok {
			return nil, fmt.Errorf("scenario %s: crash victim %v not in this scheme", spec.Name, c.Victim)
		}
		i, c, node := i, c, node
		eng.After(c.At, func() { sys.CrashNode(node) })
		if c.Downtime > 0 {
			eng.After(c.At+c.Downtime, func() {
				if err := sys.RepairNode(node); err != nil {
					schedErrs = append(schedErrs, fmt.Sprintf("crash %d repair: %v", i, err))
				}
			})
		}
	}
	for _, t := range spec.Faults.Software {
		eng.After(t.D(), sys.ActivateSoftwareFault)
	}

	sys.Start()
	sys.RunUntil(vtime.Zero.Add(spec.Duration.D()))
	sys.Quiesce()

	o := collectSim(spec, sys, reg)
	for _, e := range schedErrs {
		o.failed = true
		if o.failReason != "" {
			o.failReason += "; "
		}
		o.failReason += e
	}
	return evaluate(spec, o), nil
}

// collectSim gathers the outcome from a quiesced system.
func collectSim(spec *Spec, sys *coord.System, reg *obs.Registry) *outcome {
	o := &outcome{
		mode:     ModeSim,
		activeC1: sys.ActiveC1(),
		snapshot: reg.Snapshot(),
	}
	o.failed, o.failReason = sys.Failed()
	o.line, o.lineErr = sys.StableLine()
	conv := sys.ReplicasConverged()
	o.converged = &conv

	m := sys.Metrics()
	o.hwFaults = m.HWFaults
	o.swRecoveries = m.SWRecoveries

	o.stableRounds = make(map[string]uint64)
	for _, id := range msg.Processes() {
		if cp := sys.Checkpointer(id); cp != nil {
			o.stableRounds[id.String()] = cp.Ndc()
		}
	}

	ns := sys.Network().Stats()
	o.sent, o.delivered = ns.Sent, ns.Delivered

	if st, ok := sys.ChaosStats(); ok {
		stCopy := st
		o.chaosStats = &stCopy
	} else if hasScheduledChaos(spec) {
		// Crash/stall-only scenarios install no frame injector; report
		// zero frame stats so fault_kinds can still evaluate.
		o.chaosStats = &chaos.Stats{}
	}
	return o
}

// hasScheduledChaos reports whether the spec schedules any chaos at all.
func hasScheduledChaos(spec *Spec) bool {
	sp, err := spec.ChaosSpec()
	return err == nil && sp.Active()
}
