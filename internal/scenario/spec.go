// Package scenario is the spec-driven scenario engine: a declarative JSON
// grammar composing workload × chaos × topology × scheme with per-scenario
// invariant expectations, and runners that execute the same spec in both the
// discrete-event simulator (internal/coord) and the live middleware
// (internal/live). Each committed spec under specs/ is one named, repeatable
// fault campaign; the runners end every run with the same expectation
// evaluation, so a scenario's verdict means the same thing in both worlds.
//
// The grammar is stdlib-parsed (encoding/json, unknown fields rejected) with
// every duration written as a time.ParseDuration string ("150ms"), so specs
// stay reviewable as text diffs. Parse → Encode → Parse is a fixpoint; the
// fuzz target holds the codec to that.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"github.com/synergy-ft/synergy/internal/app"
	"github.com/synergy-ft/synergy/internal/at"
	"github.com/synergy-ft/synergy/internal/chaos"
	"github.com/synergy-ft/synergy/internal/coord"
	"github.com/synergy-ft/synergy/internal/msg"
)

// Duration marshals as a time.ParseDuration string so specs read "150ms",
// never 150000000.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler. Only strings are accepted:
// a bare number is ambiguous (ns? ms?) and is exactly the spelling mistake
// the corpus wall should catch.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"150ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// Spec is one named scenario: what to run, what to break, and what must
// still hold afterwards.
type Spec struct {
	// Name identifies the scenario in reports and artifacts.
	Name string `json:"name"`
	// Description says what the scenario exercises, for reviewers.
	Description string `json:"description,omitempty"`
	// Seed drives every random decision (workload, chaos, clocks).
	Seed int64 `json:"seed"`
	// Scheme selects the fault-tolerance composition; defaults to
	// "coordinated" (the only scheme the live stack implements — specs
	// that must run in both worlds use it).
	Scheme string `json:"scheme,omitempty"`
	// Duration is how long the scenario runs (virtual time in the
	// simulator, wall time live).
	Duration Duration `json:"duration"`
	// Modes lists the execution paths the spec supports: "sim", "live".
	// Empty means both.
	Modes []string `json:"modes,omitempty"`
	// Topology shapes the nodes, clocks, interconnect and storage.
	Topology Topology `json:"topology,omitempty"`
	// Workload drives the application components and optional probe load.
	Workload Workload `json:"workload,omitempty"`
	// Chaos schedules the faults.
	Chaos Chaos `json:"chaos,omitempty"`
	// Faults schedules software fault activations and the acceptance-test
	// oracle quality.
	Faults Faults `json:"faults,omitempty"`
	// Expect lists the invariant expectations; at least one is required
	// (a scenario that asserts nothing tests nothing).
	Expect Expect `json:"expect"`
}

// Topology shapes the run's nodes, clocks, interconnect and storage. Zero
// fields take the engine defaults (see applyDefaults).
type Topology struct {
	// Transport selects the live interconnect: "chan" (in-process,
	// default) or "tcp" (loopback sockets; required for frame chaos).
	// The simulator always uses its virtual-time network.
	Transport string `json:"transport,omitempty"`
	// Durable backs live stable storage with on-disk logs (implied by
	// crash or fsync-stall schedules).
	Durable bool `json:"durable,omitempty"`
	// StableRetention deepens the retained stable history (0 = default).
	StableRetention int `json:"stable_retention,omitempty"`
	// CheckpointInterval is the TB interval Δ (default 100ms).
	CheckpointInterval Duration `json:"checkpoint_interval,omitempty"`
	// ClockMaxDeviation is δ, the clock synchronization bound (default 2ms).
	ClockMaxDeviation Duration `json:"clock_max_deviation,omitempty"`
	// ClockDriftRate is ρ, the clock drift bound (default 1e-4).
	ClockDriftRate float64 `json:"clock_drift_rate,omitempty"`
	// MinDelay and MaxDelay bound message delivery (defaults 200µs/2ms).
	// MinDelay of "0s" is honored; an absent MaxDelay takes the default,
	// so an explicitly zero-delay interconnect sets both to "0s" and
	// ZeroDelay.
	MinDelay Duration `json:"min_delay,omitempty"`
	MaxDelay Duration `json:"max_delay,omitempty"`
	// ZeroDelay forces MinDelay = MaxDelay = 0 (pure-transport load
	// measurement); needed because an absent max_delay means "default".
	ZeroDelay bool `json:"zero_delay,omitempty"`
	// Cluster switches the scenario from the fixed three-process
	// architecture to an N-node cluster (internal/cluster): a ring of
	// components lowered one node per replica, coordinated over the gossip
	// dissemination layer. Chaos and expectations then name nodes "C<i>"
	// (component i's active) and "C<i>s" (its shadow).
	Cluster *ClusterSpec `json:"cluster,omitempty"`
}

// ClusterSpec shapes an N-node cluster scenario: a ring topology with the
// first Guarded components under guarded operation (nodes = components +
// guarded, since each guarded component adds a shadow).
type ClusterSpec struct {
	// Components is the ring size (each component sends to its successor).
	Components int `json:"components"`
	// Guarded is how many components run guarded with a shadow replica.
	Guarded int `json:"guarded"`
	// InternalRate and ExternalRate drive every component's workload in
	// events/sec (defaults 50 and 5, the engine's component defaults).
	InternalRate float64 `json:"internal_rate,omitempty"`
	ExternalRate float64 `json:"external_rate,omitempty"`
	// Fanout and GossipRounds parameterize the epidemic dissemination
	// layer (the gossip package defaults apply when zero).
	Fanout       int `json:"fanout,omitempty"`
	GossipRounds int `json:"gossip_rounds,omitempty"`
	// GossipInterval is the anti-entropy tick period (default 8·MaxDelay).
	GossipInterval Duration `json:"gossip_interval,omitempty"`
}

// Workload drives the two application components and the optional
// transport-probe load.
type Workload struct {
	// Component1 and Component2 set the per-component event rates
	// (events/sec). Absent components take the engine default
	// (internal 50/s, external 5/s).
	Component1 *ComponentLoad `json:"component1,omitempty"`
	Component2 *ComponentLoad `json:"component2,omitempty"`
	// Probes, when set, drives open-loop transport probes on the given
	// arrival schedule (live only; the simulator has no probe path).
	Probes *Probes `json:"probes,omitempty"`
}

// ComponentLoad is one component's workload rates, in events/sec.
type ComponentLoad struct {
	InternalRate  float64 `json:"internal_rate"`
	ExternalRate  float64 `json:"external_rate,omitempty"`
	LocalStepRate float64 `json:"local_step_rate,omitempty"`
}

// Probes configures the open-loop probe driver (the synergy-load arrival
// generators).
type Probes struct {
	// Schedule is one of "poisson", "ramp", "burst", "diurnal".
	Schedule string `json:"schedule"`
	// Rate is the offered probe rate in msgs/sec (poisson: the rate;
	// ramp: start; burst/diurnal: base).
	Rate float64 `json:"rate"`
	// Rate2 is the second rate for ramp (end) and burst (high
	// half-period); 0 picks 4x Rate.
	Rate2 float64 `json:"rate2,omitempty"`
	// Period is the burst/diurnal modulation period (default 1s).
	Period Duration `json:"period,omitempty"`
}

// Chaos schedules the run's faults (the internal/chaos grammar, with procs
// named).
type Chaos struct {
	Drop          float64          `json:"drop,omitempty"`
	Duplicate     float64          `json:"duplicate,omitempty"`
	Corrupt       float64          `json:"corrupt,omitempty"`
	MaxExtraDelay Duration         `json:"max_extra_delay,omitempty"`
	Partitions    []PartitionSpec  `json:"partitions,omitempty"`
	Crashes       []CrashSpec      `json:"crashes,omitempty"`
	FsyncStalls   []FsyncStallSpec `json:"fsync_stalls,omitempty"`
	DiskFaults    []DiskFaultSpec  `json:"disk_faults,omitempty"`
}

// PartitionSpec blocks From→To frames (both directions with Bidirectional)
// for [Start, End).
type PartitionSpec struct {
	From          string   `json:"from"`
	To            string   `json:"to"`
	Bidirectional bool     `json:"bidirectional,omitempty"`
	Start         Duration `json:"start"`
	End           Duration `json:"end"`
}

// CrashSpec kills Victim's node at At and (with positive Downtime) reboots
// it from durable storage Downtime later.
type CrashSpec struct {
	Victim   string   `json:"victim"`
	At       Duration `json:"at"`
	Downtime Duration `json:"downtime,omitempty"`
}

// FsyncStallSpec slows Victim's stable-log fsyncs by Stall during [Start,
// End).
type FsyncStallSpec struct {
	Victim string   `json:"victim"`
	Start  Duration `json:"start"`
	End    Duration `json:"end"`
	Stall  Duration `json:"stall"`
}

// DiskFaultSpec injects disk faults into Victim's stable-log IO during
// [Start, End): each probability draws per matching operation, or Persistent
// fails every write and fsync deterministically (a dead disk; live only —
// the simulator has no storage layer).
type DiskFaultSpec struct {
	Victim      string   `json:"victim"`
	Start       Duration `json:"start"`
	End         Duration `json:"end"`
	WriteErr    float64  `json:"write_err,omitempty"`
	TornWrite   float64  `json:"torn_write,omitempty"`
	SyncErr     float64  `json:"sync_err,omitempty"`
	ReadCorrupt float64  `json:"read_corrupt,omitempty"`
	Persistent  bool     `json:"persistent,omitempty"`
}

// Faults schedules software fault activations and shapes the acceptance
// test.
type Faults struct {
	// Software lists the elapsed times at which the active process's
	// design fault activates (state corruption the next acceptance test
	// can detect).
	Software []Duration `json:"software,omitempty"`
	// ATCoverage and ATFalseAlarm configure the acceptance-test oracle;
	// absent means the perfect test (coverage 1, false alarms 0).
	ATCoverage   *float64 `json:"at_coverage,omitempty"`
	ATFalseAlarm *float64 `json:"at_false_alarm,omitempty"`
}

// Expect lists the scenario's invariant expectations. Pointer fields
// distinguish "unchecked" from a zero-valued assertion. A check that is not
// meaningful in one execution path (probes in the simulator, replica
// convergence live) reports status "skip" there rather than failing.
type Expect struct {
	// NoFailure asserts the run ended without an unrecoverable condition.
	NoFailure *bool `json:"no_failure,omitempty"`
	// RecoveryLineClean asserts the final recovery line exists and passes
	// every consistency/recoverability/content invariant.
	RecoveryLineClean *bool `json:"recovery_line_clean,omitempty"`
	// MinStableRounds asserts every live node committed at least this
	// many stable checkpoint rounds (liveness under chaos).
	MinStableRounds *uint64 `json:"min_stable_rounds,omitempty"`
	// ReplicasConverged asserts the active and shadow states are equal
	// after quiescing (simulator only).
	ReplicasConverged *bool `json:"replicas_converged,omitempty"`
	// SWRecoveries asserts the exact number of completed software
	// recoveries.
	SWRecoveries *int `json:"sw_recoveries,omitempty"`
	// HWFaults asserts the exact number of hardware faults recovered.
	HWFaults *int `json:"hw_faults,omitempty"`
	// Active asserts which process embodies component 1's active side at
	// the end ("P1act", or "P1sdw" after a takeover).
	Active string `json:"active,omitempty"`
	// FaultKinds asserts each listed injected-fault kind actually fired:
	// "drop", "duplicate", "corrupt", "delay", "partition", "crc-catch",
	// "fsync-stall" (the last two live only).
	FaultKinds []string `json:"fault_kinds,omitempty"`
	// FaultCountersMatch asserts the obs fault counters agree exactly
	// with the injector's own stats (metrics-pipeline integrity).
	FaultCountersMatch *bool `json:"fault_counters_match,omitempty"`
	// CheckpointsRecorded asserts both stable commits and volatile
	// checkpoints show up in the metrics.
	CheckpointsRecorded *bool `json:"checkpoints_recorded,omitempty"`
	// MaxBlocking asserts every observed TB blocking period τ(b) fits
	// under the bound (read from the blocking histogram).
	MaxBlocking Duration `json:"max_blocking,omitempty"`
	// MinProbeRate asserts delivered probes per second clears the floor
	// (live only; requires workload.probes).
	MinProbeRate float64 `json:"min_probe_rate,omitempty"`
	// AllProbesDelivered asserts every sent probe was delivered after the
	// drain (live only; requires workload.probes).
	AllProbesDelivered *bool `json:"all_probes_delivered,omitempty"`
	// GossipFaninBounded asserts the worst per-node dissemination fan-in
	// (update copies received / updates broadcast anywhere) stayed positive
	// and within the epidemic's fanout·rounds bound — the O(fanout·rounds)
	// coordination cost the cluster claims instead of O(N). Requires
	// topology.cluster.
	GossipFaninBounded *bool `json:"gossip_fanin_bounded,omitempty"`
}

// Count returns the number of expectations the spec asserts.
func (e Expect) Count() int {
	n := 0
	for _, set := range []bool{
		e.NoFailure != nil, e.RecoveryLineClean != nil, e.MinStableRounds != nil,
		e.ReplicasConverged != nil, e.SWRecoveries != nil, e.HWFaults != nil,
		e.Active != "", len(e.FaultKinds) > 0, e.FaultCountersMatch != nil,
		e.CheckpointsRecorded != nil, e.MaxBlocking > 0, e.MinProbeRate > 0,
		e.AllProbesDelivered != nil, e.GossipFaninBounded != nil,
	} {
		if set {
			n++
		}
	}
	return n
}

// Execution modes.
const (
	ModeSim  = "sim"
	ModeLive = "live"
)

// Schedules lists the valid probe arrival schedules.
var Schedules = []string{"poisson", "ramp", "burst", "diurnal"}

// faultKinds lists the assertable injected-fault kinds.
var faultKinds = []string{
	"drop", "duplicate", "corrupt", "delay", "partition", "crc-catch", "fsync-stall",
	"disk-write-err", "disk-torn", "disk-sync-err", "disk-corrupt",
}

// Parse decodes and validates one scenario spec. Unknown fields are
// rejected, so a typoed expectation fails loudly instead of silently
// asserting nothing.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	// Trailing garbage after the spec object is a malformed file, not a
	// second document.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the spec as canonical indented JSON (the committed-corpus
// format). Parse(Encode(s)) reproduces s exactly.
func (s *Spec) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// badRate rejects NaN, ±Inf and negative rates.
func badRate(r float64) bool { return math.IsNaN(r) || math.IsInf(r, 0) || r < 0 }

// Validate checks the spec end to end: grammar-level constraints here,
// protocol-level ones by building and validating the underlying configs.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %s: non-positive duration %v", s.Name, s.Duration.D())
	}
	if _, err := s.SchemeID(); err != nil {
		return err
	}
	for _, m := range s.Modes {
		if m != ModeSim && m != ModeLive {
			return fmt.Errorf("scenario %s: unknown mode %q (want %q or %q)", s.Name, m, ModeSim, ModeLive)
		}
	}
	if t := s.Topology.Transport; t != "" && t != "chan" && t != "tcp" {
		return fmt.Errorf("scenario %s: unknown transport %q (want \"chan\" or \"tcp\")", s.Name, t)
	}
	if s.Topology.StableRetention < 0 {
		return fmt.Errorf("scenario %s: negative stable retention", s.Name)
	}
	for _, d := range []Duration{
		s.Topology.CheckpointInterval, s.Topology.ClockMaxDeviation,
		s.Topology.MinDelay, s.Topology.MaxDelay,
	} {
		if d < 0 {
			return fmt.Errorf("scenario %s: negative topology duration %v", s.Name, d.D())
		}
	}
	if badRate(s.Topology.ClockDriftRate) {
		return fmt.Errorf("scenario %s: bad clock drift rate %v", s.Name, s.Topology.ClockDriftRate)
	}
	if err := s.validateCluster(); err != nil {
		return err
	}
	for name, c := range map[string]*ComponentLoad{"component1": s.Workload.Component1, "component2": s.Workload.Component2} {
		if c == nil {
			continue
		}
		if badRate(c.InternalRate) || badRate(c.ExternalRate) || badRate(c.LocalStepRate) {
			return fmt.Errorf("scenario %s: %s has a NaN/Inf/negative rate", s.Name, name)
		}
	}
	if p := s.Workload.Probes; p != nil {
		valid := false
		for _, sched := range Schedules {
			if p.Schedule == sched {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("scenario %s: unknown probe schedule %q", s.Name, p.Schedule)
		}
		if badRate(p.Rate) || p.Rate == 0 {
			return fmt.Errorf("scenario %s: probe rate must be positive and finite", s.Name)
		}
		if badRate(p.Rate2) {
			return fmt.Errorf("scenario %s: bad probe rate2 %v", s.Name, p.Rate2)
		}
		if p.Period < 0 {
			return fmt.Errorf("scenario %s: negative probe period", s.Name)
		}
	}
	// Scheduled one-shot events must fire inside the run: the simulator's
	// quiesce drains the whole event queue, so a crash or repair landing
	// after the nominal end would otherwise fire mid-drain (a repair even
	// restarts the checkpoint timers, and the drain never terminates).
	for _, t := range s.Faults.Software {
		if t < 0 {
			return fmt.Errorf("scenario %s: software fault scheduled before start", s.Name)
		}
		if t >= s.Duration {
			return fmt.Errorf("scenario %s: software fault at %v fires at/after the %v end", s.Name, t.D(), s.Duration.D())
		}
	}
	for i, c := range s.Chaos.Crashes {
		if c.At >= s.Duration {
			return fmt.Errorf("scenario %s: crash %d at %v fires at/after the %v end", s.Name, i, c.At.D(), s.Duration.D())
		}
		if c.Downtime > 0 && c.At+c.Downtime >= s.Duration {
			return fmt.Errorf("scenario %s: crash %d repair at %v fires at/after the %v end", s.Name, i, (c.At + c.Downtime).D(), s.Duration.D())
		}
	}
	for name, p := range map[string]*float64{"at_coverage": s.Faults.ATCoverage, "at_false_alarm": s.Faults.ATFalseAlarm} {
		if p != nil && (badRate(*p) || *p > 1) {
			return fmt.Errorf("scenario %s: %s outside [0,1]", s.Name, name)
		}
	}
	if badRate(s.Chaos.Drop) || badRate(s.Chaos.Duplicate) || badRate(s.Chaos.Corrupt) {
		return fmt.Errorf("scenario %s: NaN/Inf/negative chaos probability", s.Name)
	}
	for i, f := range s.Chaos.DiskFaults {
		if badRate(f.WriteErr) || badRate(f.TornWrite) || badRate(f.SyncErr) || badRate(f.ReadCorrupt) {
			return fmt.Errorf("scenario %s: disk fault %d has a NaN/Inf/negative probability", s.Name, i)
		}
	}
	if _, err := s.ChaosSpec(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	for _, k := range s.Expect.FaultKinds {
		valid := false
		for _, known := range faultKinds {
			if k == known {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("scenario %s: unknown fault kind %q in expectations", s.Name, k)
		}
	}
	if badRate(s.Expect.MinProbeRate) {
		return fmt.Errorf("scenario %s: bad min_probe_rate", s.Name)
	}
	if s.Expect.MaxBlocking < 0 {
		return fmt.Errorf("scenario %s: negative max_blocking", s.Name)
	}
	if s.Expect.Active != "" {
		resolve, err := s.procResolver()
		if err != nil {
			return err
		}
		if _, err := resolve(s.Expect.Active); err != nil {
			return fmt.Errorf("scenario %s: expect.active: %w", s.Name, err)
		}
	}
	if (s.Expect.MinProbeRate > 0 || s.Expect.AllProbesDelivered != nil) && s.Workload.Probes == nil {
		return fmt.Errorf("scenario %s: probe expectations need workload.probes", s.Name)
	}
	if s.Expect.GossipFaninBounded != nil && s.Topology.Cluster == nil {
		return fmt.Errorf("scenario %s: gossip_fanin_bounded needs topology.cluster", s.Name)
	}
	if s.Expect.Count() == 0 {
		return fmt.Errorf("scenario %s: no expectations — a scenario must assert at least one invariant", s.Name)
	}
	return nil
}

// schemeNames maps spec scheme strings to coord schemes. Only "coordinated"
// runs live; the rest are simulator baselines.
var schemeNames = map[string]coord.Scheme{
	"coordinated":   coord.Coordinated,
	"write-through": coord.WriteThrough,
	"naive":         coord.Naive,
	"tb-only":       coord.TBOnly,
	"mdcd-only":     coord.MDCDOnly,
}

// SchemeID resolves the scheme string (default "coordinated").
func (s *Spec) SchemeID() (coord.Scheme, error) {
	name := s.Scheme
	if name == "" {
		name = "coordinated"
	}
	sch, ok := schemeNames[name]
	if !ok {
		return 0, fmt.Errorf("scenario %s: unknown scheme %q", s.Name, s.Scheme)
	}
	return sch, nil
}

// SchemeName returns the resolved scheme string.
func (s *Spec) SchemeName() string {
	if s.Scheme == "" {
		return "coordinated"
	}
	return s.Scheme
}

// RunModes returns the execution paths the spec runs in, defaulting to both.
func (s *Spec) RunModes() []string {
	if len(s.Modes) == 0 {
		return []string{ModeSim, ModeLive}
	}
	return s.Modes
}

// HasMode reports whether the spec runs in the given mode.
func (s *Spec) HasMode(mode string) bool {
	for _, m := range s.RunModes() {
		if m == mode {
			return true
		}
	}
	return false
}

// parseProc resolves a spec process name.
func parseProc(name string) (msg.ProcID, error) {
	for _, p := range msg.Processes() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown process %q (want P1act, P1sdw or P2)", name)
}

// procResolver returns the proc-name resolver the spec's topology implies:
// the fixed three-process names, or the cluster lowering's node names
// ("C<i>", "C<i>s") when a cluster topology is declared.
func (s *Spec) procResolver() (func(string) (msg.ProcID, error), error) {
	if s.Topology.Cluster == nil {
		return parseProc, nil
	}
	asg, err := s.clusterAssignment()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return func(name string) (msg.ProcID, error) {
		if id, ok := asg.NodeByName(name); ok {
			return id, nil
		}
		return 0, fmt.Errorf("unknown cluster node %q (want \"C<i>\" or \"C<i>s\" within the topology)", name)
	}, nil
}

// ChaosSpec lowers the chaos grammar to the internal/chaos spec, validating
// process names and windows.
func (s *Spec) ChaosSpec() (chaos.Spec, error) {
	out := chaos.Spec{
		Seed:          s.Seed,
		Drop:          s.Chaos.Drop,
		Duplicate:     s.Chaos.Duplicate,
		Corrupt:       s.Chaos.Corrupt,
		MaxExtraDelay: s.Chaos.MaxExtraDelay.D(),
	}
	resolve, err := s.procResolver()
	if err != nil {
		return out, err
	}
	for _, p := range s.Chaos.Partitions {
		a, err := resolve(p.From)
		if err != nil {
			return out, err
		}
		b, err := resolve(p.To)
		if err != nil {
			return out, err
		}
		out.Partitions = append(out.Partitions, chaos.Partition{
			A: a, B: b, Bidirectional: p.Bidirectional,
			Start: p.Start.D(), End: p.End.D(),
		})
	}
	for _, c := range s.Chaos.Crashes {
		v, err := resolve(c.Victim)
		if err != nil {
			return out, err
		}
		out.Crashes = append(out.Crashes, chaos.Crash{Victim: v, At: c.At.D(), Downtime: c.Downtime.D()})
	}
	for _, f := range s.Chaos.FsyncStalls {
		v, err := resolve(f.Victim)
		if err != nil {
			return out, err
		}
		out.FsyncStalls = append(out.FsyncStalls, chaos.FsyncStall{
			Victim: v, Start: f.Start.D(), End: f.End.D(), Stall: f.Stall.D(),
		})
	}
	for _, f := range s.Chaos.DiskFaults {
		v, err := resolve(f.Victim)
		if err != nil {
			return out, err
		}
		out.DiskFaults = append(out.DiskFaults, chaos.DiskFault{
			Victim: v, Start: f.Start.D(), End: f.End.D(),
			WriteErr: f.WriteErr, TornWrite: f.TornWrite,
			SyncErr: f.SyncErr, ReadCorrupt: f.ReadCorrupt,
			Persistent: f.Persistent,
		})
	}
	if err := out.Validate(); err != nil {
		return out, err
	}
	return out, nil
}

// Test builds the acceptance test the spec configures.
func (s *Spec) Test() at.Test {
	if s.Faults.ATCoverage == nil && s.Faults.ATFalseAlarm == nil {
		return at.Perfect()
	}
	o := at.Oracle{Coverage: 1}
	if s.Faults.ATCoverage != nil {
		o.Coverage = *s.Faults.ATCoverage
	}
	if s.Faults.ATFalseAlarm != nil {
		o.FalseAlarm = *s.Faults.ATFalseAlarm
	}
	return o
}

// Engine defaults shared by both runners (the live stack's test-scale
// parameters, so a spec means the same thing in both worlds).
const (
	defaultCheckpointInterval = 100 * time.Millisecond
	defaultClockMaxDeviation  = 2 * time.Millisecond
	defaultClockDriftRate     = 1e-4
	defaultMinDelay           = 200 * time.Microsecond
	defaultMaxDelay           = 2 * time.Millisecond
)

// defaultComponentLoad is the per-component workload when the spec leaves a
// component unset.
var defaultComponentLoad = ComponentLoad{InternalRate: 50, ExternalRate: 5}

// Interval resolves the TB interval Δ.
func (t Topology) Interval() time.Duration {
	if t.CheckpointInterval > 0 {
		return t.CheckpointInterval.D()
	}
	return defaultCheckpointInterval
}

// Deviation resolves the clock synchronization bound δ.
func (t Topology) Deviation() time.Duration {
	if t.ClockMaxDeviation > 0 {
		return t.ClockMaxDeviation.D()
	}
	return defaultClockMaxDeviation
}

// Drift resolves the clock drift bound ρ.
func (t Topology) Drift() float64 {
	if t.ClockDriftRate > 0 {
		return t.ClockDriftRate
	}
	return defaultClockDriftRate
}

// Delays resolves the interconnect delay bounds.
func (t Topology) Delays() (tmin, tmax time.Duration) {
	if t.ZeroDelay {
		return 0, 0
	}
	tmin, tmax = defaultMinDelay, defaultMaxDelay
	if t.MinDelay > 0 {
		tmin = t.MinDelay.D()
	}
	if t.MaxDelay > 0 {
		tmax = t.MaxDelay.D()
	}
	return tmin, tmax
}

// Load resolves one component's workload.
func (w Workload) Load(c *ComponentLoad) app.Workload {
	if c == nil {
		c = &defaultComponentLoad
	}
	return app.Workload{
		InternalRate:  c.InternalRate,
		ExternalRate:  c.ExternalRate,
		LocalStepRate: c.LocalStepRate,
	}
}

// NeedsDurable reports whether the live run requires on-disk stable storage.
func (s *Spec) NeedsDurable() bool {
	return s.Topology.Durable || len(s.Chaos.Crashes) > 0 || len(s.Chaos.FsyncStalls) > 0 ||
		len(s.Chaos.DiskFaults) > 0
}

// NeedsTCP reports whether the live run requires the TCP transport.
func (s *Spec) NeedsTCP() bool {
	if s.Topology.Transport == "tcp" {
		return true
	}
	sp, err := s.ChaosSpec()
	return err == nil && sp.FrameFaults()
}
