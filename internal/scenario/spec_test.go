package scenario

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"missing name", `{"duration":"1s","expect":{"no_failure":true}}`, "missing name"},
		{"zero duration", `{"name":"x","expect":{"no_failure":true}}`, "non-positive duration"},
		{"negative duration", `{"name":"x","duration":"-5s","expect":{"no_failure":true}}`, "non-positive duration"},
		{"bare-number duration", `{"name":"x","duration":100,"expect":{"no_failure":true}}`, "duration must be a string"},
		{"unknown scheme", `{"name":"x","duration":"1s","scheme":"quantum","expect":{"no_failure":true}}`, "unknown scheme"},
		{"unknown mode", `{"name":"x","duration":"1s","modes":["dream"],"expect":{"no_failure":true}}`, "unknown mode"},
		{"unknown transport", `{"name":"x","duration":"1s","topology":{"transport":"udp"},"expect":{"no_failure":true}}`, "unknown transport"},
		{"unknown field", `{"name":"x","duration":"1s","expct":{"no_failure":true}}`, "unknown field"},
		{"trailing data", `{"name":"x","duration":"1s","expect":{"no_failure":true}} extra`, "trailing data"},
		{"zero expectations", `{"name":"x","duration":"1s","expect":{}}`, "no expectations"},
		{"negative chaos rate", `{"name":"x","duration":"1s","chaos":{"drop":-0.1},"expect":{"no_failure":true}}`, "chaos probability"},
		{"chaos rate above one", `{"name":"x","duration":"1s","chaos":{"duplicate":1.5},"expect":{"no_failure":true}}`, "x"},
		{"unknown partition proc", `{"name":"x","duration":"1s","chaos":{"partitions":[{"from":"P9","to":"P2","start":"1ms","end":"2ms"}]},"expect":{"no_failure":true}}`, "unknown process"},
		{"crash at end", `{"name":"x","duration":"1s","chaos":{"crashes":[{"victim":"P2","at":"1s"}]},"expect":{"no_failure":true}}`, "at/after"},
		{"repair past end", `{"name":"x","duration":"1s","chaos":{"crashes":[{"victim":"P2","at":"800ms","downtime":"300ms"}]},"expect":{"no_failure":true}}`, "at/after"},
		{"software fault at end", `{"name":"x","duration":"1s","faults":{"software":["1s"]},"expect":{"no_failure":true}}`, "at/after"},
		{"coverage above one", `{"name":"x","duration":"1s","faults":{"at_coverage":1.5},"expect":{"no_failure":true}}`, "[0,1]"},
		{"unknown fault kind", `{"name":"x","duration":"1s","expect":{"fault_kinds":["gamma-ray"]}}`, "unknown fault kind"},
		{"unknown probe schedule", `{"name":"x","duration":"1s","workload":{"probes":{"schedule":"tidal","rate":10}},"expect":{"no_failure":true}}`, "probe schedule"},
		{"probe expect without probes", `{"name":"x","duration":"1s","expect":{"min_probe_rate":10}}`, "workload.probes"},
		{"bad expect active", `{"name":"x","duration":"1s","expect":{"active":"P3"}}`, "unknown process"},
		{"negative retention", `{"name":"x","duration":"1s","topology":{"stable_retention":-1},"expect":{"no_failure":true}}`, "retention"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) && tc.want != "x" {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseEncodeFixpoint(t *testing.T) {
	in := []byte(`{
  "name": "full",
  "description": "everything at once",
  "seed": 42,
  "scheme": "coordinated",
  "duration": "1500ms",
  "modes": ["sim", "live"],
  "topology": {
    "transport": "tcp",
    "durable": true,
    "checkpoint_interval": "80ms",
    "clock_max_deviation": "3ms",
    "min_delay": "100us",
    "max_delay": "1ms"
  },
  "workload": {
    "component1": {"internal_rate": 60, "external_rate": 6},
    "probes": {"schedule": "diurnal", "rate": 100, "period": "500ms"}
  },
  "chaos": {
    "drop": 0.1,
    "max_extra_delay": "1ms",
    "partitions": [{"from": "P1act", "to": "P2", "bidirectional": true, "start": "100ms", "end": "200ms"}],
    "crashes": [{"victim": "P2", "at": "300ms", "downtime": "200ms"}],
    "fsync_stalls": [{"victim": "P2", "start": "600ms", "end": "900ms", "stall": "10ms"}]
  },
  "faults": {"software": ["400ms"], "at_coverage": 0.95},
  "expect": {
    "no_failure": true,
    "recovery_line_clean": true,
    "min_stable_rounds": 3,
    "sw_recoveries": 1,
    "hw_faults": 1,
    "active": "P1sdw",
    "fault_kinds": ["drop", "partition"],
    "fault_counters_match": true,
    "max_blocking": "50ms",
    "min_probe_rate": 20,
    "all_probes_delivered": true
  }
}`)
	s, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(enc)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, enc)
	}
	enc2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("Encode not a fixpoint:\n%s\nvs\n%s", enc, enc2)
	}
	if s2.Expect.Count() != 11 {
		t.Fatalf("Expect.Count() = %d after round trip, want 11", s2.Expect.Count())
	}
}

func TestDefaultsAndLowering(t *testing.T) {
	s, err := Parse([]byte(`{"name":"d","seed":5,"duration":"1s","expect":{"no_failure":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Topology.Interval(); got != defaultCheckpointInterval {
		t.Fatalf("Interval = %v, want default %v", got, defaultCheckpointInterval)
	}
	tmin, tmax := s.Topology.Delays()
	if tmin != defaultMinDelay || tmax != defaultMaxDelay {
		t.Fatalf("Delays = %v/%v, want defaults", tmin, tmax)
	}
	if modes := s.RunModes(); len(modes) != 2 || modes[0] != ModeSim || modes[1] != ModeLive {
		t.Fatalf("RunModes = %v, want both", modes)
	}
	if s.SchemeName() != "coordinated" {
		t.Fatalf("SchemeName = %q, want coordinated default", s.SchemeName())
	}
	w := s.Workload.Load(s.Workload.Component1)
	if w.InternalRate != defaultComponentLoad.InternalRate {
		t.Fatalf("default workload internal rate = %v", w.InternalRate)
	}
	sp, err := s.ChaosSpec()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Seed != 5 {
		t.Fatalf("chaos seed %d, want the spec seed", sp.Seed)
	}
	if s.NeedsDurable() || s.NeedsTCP() {
		t.Fatal("plain spec must not require durability or TCP")
	}
}

func TestZeroDelayTopology(t *testing.T) {
	s, err := Parse([]byte(`{"name":"z","duration":"1s","topology":{"zero_delay":true},"expect":{"no_failure":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if tmin, tmax := s.Topology.Delays(); tmin != 0 || tmax != 0 {
		t.Fatalf("zero_delay Delays = %v/%v, want 0/0", tmin, tmax)
	}
}

func TestNeedsDurableAndTCP(t *testing.T) {
	crash, err := Parse([]byte(`{"name":"c","duration":"1s","chaos":{"crashes":[{"victim":"P2","at":"200ms","downtime":"100ms"}]},"expect":{"hw_faults":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !crash.NeedsDurable() {
		t.Fatal("crash schedule must imply durable storage")
	}
	if crash.NeedsTCP() {
		t.Fatal("crash-only spec must not require TCP")
	}
	drop, err := Parse([]byte(`{"name":"f","duration":"1s","chaos":{"drop":0.1},"expect":{"no_failure":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !drop.NeedsTCP() {
		t.Fatal("frame faults must imply the TCP transport")
	}
}

func TestGapsSchedules(t *testing.T) {
	for _, sched := range Schedules {
		p := Probes{Schedule: sched, Rate: 100}
		rng := newTestRand()
		gap := p.Gaps(time.Second, rng)
		var total time.Duration
		for elapsed := time.Duration(0); elapsed < time.Second; {
			g := gap(elapsed)
			if g < 0 {
				t.Fatalf("%s: negative gap %v", sched, g)
			}
			if g == 0 {
				g = time.Nanosecond
			}
			elapsed += g
			total += g
		}
		if total <= 0 {
			t.Fatalf("%s: generator never advanced", sched)
		}
	}
	// Burst alternates between the base and high rates by half-period.
	p := Probes{Schedule: "burst", Rate: 100, Rate2: 400, Period: Duration(200 * time.Millisecond)}
	gap := p.Gaps(time.Second, newTestRand())
	if lo, hi := gap(0), gap(150*time.Millisecond); lo != 4*hi {
		t.Fatalf("burst gaps: base %v, high %v — want base = 4x high", lo, hi)
	}
}
