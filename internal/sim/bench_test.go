package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures the engine's raw event rate with a
// self-rescheduling event chain.
func BenchmarkEventThroughput(b *testing.B) {
	e := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(time.Millisecond, tick)
		}
	}
	e.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkScheduleCancel measures timer churn (the TB protocol arms and
// cancels timers continuously).
func BenchmarkScheduleCancel(b *testing.B) {
	e := New(1)
	// Warm past the event queue's compaction threshold so its free list and
	// backing array reach steady state before measuring.
	for i := 0; i < 32; i++ {
		e.Cancel(e.After(time.Hour, nil))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.After(time.Hour, nil)
		e.Cancel(id)
	}
}
