// Package sim provides the deterministic discrete-event simulation engine
// that drives every experiment in this repository. All randomness flows from
// a single seeded source, so a run is exactly reproducible from its seed.
package sim

import (
	"math/rand"
	"time"

	"github.com/synergy-ft/synergy/internal/eventq"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Engine advances virtual time by executing scheduled events in order.
type Engine struct {
	now     vtime.Time
	queue   eventq.Queue
	rng     *rand.Rand
	stopped bool
	steps   uint64
}

// New creates an engine whose randomness is derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual ("true") time.
func (e *Engine) Now() vtime.Time { return e.now }

// Rand exposes the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule queues fn to run at instant at. Instants in the past are clamped
// to the present so causality is never violated.
func (e *Engine) Schedule(at vtime.Time, fn func()) eventq.ID {
	if at.Before(e.now) {
		at = e.now
	}
	return e.queue.Push(at, fn)
}

// After queues fn to run d from now.
func (e *Engine) After(d time.Duration, fn func()) eventq.ID {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now.Add(d), fn)
}

// Cancel revokes a previously scheduled event.
func (e *Engine) Cancel(id eventq.ID) bool { return e.queue.Cancel(id) }

// Stop makes the current Run/RunUntil call return after the in-flight event.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the next event, advancing virtual time to its instant.
// It returns false if no events remain.
func (e *Engine) Step() bool {
	at, fn, ok := e.queue.Pop()
	if !ok {
		return false
	}
	e.now = at
	e.steps++
	if fn != nil {
		fn()
	}
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes every event scheduled at or before t, then advances the
// clock to exactly t. Events scheduled after t remain queued.
func (e *Engine) RunUntil(t vtime.Time) {
	e.stopped = false
	for !e.stopped {
		at, ok := e.queue.PeekTime()
		if !ok || at.After(t) {
			break
		}
		e.Step()
	}
	if e.now.Before(t) && !e.stopped {
		e.now = t
	}
}
