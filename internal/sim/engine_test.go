package sim

import (
	"testing"
	"time"

	"github.com/synergy-ft/synergy/internal/vtime"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	e := New(1)
	var order []string
	e.Schedule(vtime.FromSeconds(2), func() { order = append(order, "b") })
	e.Schedule(vtime.FromSeconds(1), func() { order = append(order, "a") })
	e.Schedule(vtime.FromSeconds(3), func() { order = append(order, "c") })
	e.Run()
	if got := len(order); got != 3 {
		t.Fatalf("executed %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != vtime.FromSeconds(3) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	if e.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", e.Steps())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New(1)
	var fired vtime.Time
	e.Schedule(vtime.FromSeconds(5), func() {
		e.After(2*time.Second, func() { fired = e.Now() })
	})
	e.Run()
	if fired != vtime.FromSeconds(7) {
		t.Fatalf("fired at %v, want 7s", fired)
	}
}

func TestPastEventsClampToPresent(t *testing.T) {
	e := New(1)
	var fired vtime.Time
	e.Schedule(vtime.FromSeconds(5), func() {
		e.Schedule(vtime.FromSeconds(1), func() { fired = e.Now() })
	})
	e.Run()
	if fired != vtime.FromSeconds(5) {
		t.Fatalf("past event fired at %v, want clamped to 5s", fired)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New(1)
	fired := false
	e.After(-time.Second, func() { fired = true })
	e.Run()
	if !fired || e.Now() != vtime.Zero {
		t.Fatalf("fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	e := New(1)
	var fired []vtime.Time
	for _, s := range []float64{1, 2, 3, 4} {
		s := s
		e.Schedule(vtime.FromSeconds(s), func() { fired = append(fired, vtime.FromSeconds(s)) })
	}
	e.RunUntil(vtime.FromSeconds(2.5))
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != vtime.FromSeconds(2.5) {
		t.Fatalf("Now = %v, want 2.5s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(vtime.FromSeconds(10))
	if len(fired) != 4 {
		t.Fatalf("fired %d events after second run, want 4", len(fired))
	}
}

func TestRunUntilInclusiveOfBoundary(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(vtime.FromSeconds(2), func() { fired = true })
	e.RunUntil(vtime.FromSeconds(2))
	if !fired {
		t.Fatal("event exactly at boundary should fire")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(vtime.FromSeconds(float64(i)), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("executed %d events, want 3 (stopped)", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("resumed run executed %d total, want 10", count)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	e := New(1)
	fired := false
	id := e.Schedule(vtime.FromSeconds(1), func() { fired = true })
	if !e.Cancel(id) {
		t.Fatal("Cancel returned false")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var draws []int64
		var tick func()
		tick = func() {
			draws = append(draws, e.Rand().Int63n(1000))
			if len(draws) < 20 {
				e.After(time.Duration(e.Rand().Int63n(int64(time.Second))), tick)
			}
		}
		e.After(0, tick)
		e.Run()
		return draws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}
