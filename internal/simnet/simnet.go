// Package simnet models the distributed system's interconnect on top of the
// discrete-event engine: reliable FIFO-less message delivery with bounded
// delay in [tmin, tmax] (the bounds the TB protocol's blocking periods are
// derived from), per-node failure state, delivery acknowledgements, and
// in-transit tracking used by the invariant checkers.
package simnet

import (
	"fmt"
	"slices"
	"time"

	"github.com/synergy-ft/synergy/internal/chaos"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/sim"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Config holds the delay bounds of the interconnect.
type Config struct {
	// MinDelay is tmin, the minimum message-delivery delay.
	MinDelay time.Duration
	// MaxDelay is tmax, the maximum message-delivery delay.
	MaxDelay time.Duration
}

// Validate reports whether the delay bounds are usable.
func (c Config) Validate() error {
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("simnet: invalid delay bounds [%v, %v]", c.MinDelay, c.MaxDelay)
	}
	return nil
}

// Handler consumes a delivered message at its destination process.
type Handler func(m msg.Message)

// Stats aggregates interconnect activity.
type Stats struct {
	// Sent counts messages handed to the network.
	Sent uint64
	// Delivered counts messages that reached a live destination.
	Delivered uint64
	// DroppedDown counts messages lost because the destination node was
	// down when they arrived.
	DroppedDown uint64
	// Flushed counts in-transit messages discarded by a recovery flush.
	Flushed uint64
}

// Network delivers messages between registered processes.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	procs map[msg.ProcID]*endpoint
	down  map[msg.NodeID]bool
	stats Stats

	// epoch invalidates in-flight deliveries when recovery flushes the
	// network (system-wide rollback acts as an incarnation change).
	epoch uint64
	// lastArrival enforces per-channel FIFO delivery, an assumption the
	// MDCD algorithms rely on (a passed-AT notification must not overtake
	// the application messages it covers).
	lastArrival map[pair]vtime.Time
	// inTransit counts live in-flight messages by kind.
	inTransit map[msg.Kind]int
	// observer, when set, sees every delivered message (tracing).
	observer func(m msg.Message)
	// chaos, when set, injects link faults below the reliable-delivery
	// abstraction (see SetChaos).
	chaos *chaos.Injector
}

type endpoint struct {
	node    msg.NodeID
	handler Handler
}

type pair struct {
	from, to msg.ProcID
}

// New creates a network over the engine. The configuration must be valid.
func New(eng *sim.Engine, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Network{
		eng:         eng,
		cfg:         cfg,
		procs:       make(map[msg.ProcID]*endpoint),
		down:        make(map[msg.NodeID]bool),
		inTransit:   make(map[msg.Kind]int),
		lastArrival: make(map[pair]vtime.Time),
	}, nil
}

// Config returns the delay bounds.
func (n *Network) Config() Config { return n.cfg }

// Register attaches a process handler hosted on the given node. Registering
// an already-registered process replaces its handler.
func (n *Network) Register(p msg.ProcID, node msg.NodeID, h Handler) {
	n.procs[p] = &endpoint{node: node, handler: h}
}

// Observe installs a delivery observer used for tracing. Pass nil to remove.
func (n *Network) Observe(fn func(m msg.Message)) { n.observer = fn }

// SetChaos installs a fault injector below the reliable-delivery abstraction,
// mirroring the live TCP transport's semantics in virtual time: a random drop
// costs the retransmission timeout, a partition hit holds the frame until the
// window heals plus the retransmission timeout (head-of-line: per-channel
// FIFO delays everything queued behind it), jitter adds delay, a duplicate is
// delivered twice, and a corrupted copy is CRC-dropped at the receiver so it
// only counts as an injected fault. All chaos delay lands on top of the
// clamped [tmin, tmax] base delay, exactly as the live writer sleeps outside
// the modeled propagation bounds. Pass nil to remove.
func (n *Network) SetChaos(inj *chaos.Injector) { n.chaos = inj }

// chaosFrameLen is the wire-size proxy handed to the injector for its
// corrupt-byte draw: the simulator has no encoded frame, so a fixed typical
// frame length keeps the draw count per corrupt verdict identical to the live
// path (two draws) without depending on codec details.
const chaosFrameLen = 64

// SetNodeDown marks a node as failed (true) or repaired (false). Messages
// arriving at a down node are dropped; sends from processes on a down node
// are suppressed.
func (n *Network) SetNodeDown(node msg.NodeID, down bool) { n.down[node] = down }

// NodeDown reports the failure state of a node.
func (n *Network) NodeDown(node msg.NodeID) bool { return n.down[node] }

// NodeOf returns the node hosting process p.
func (n *Network) NodeOf(p msg.ProcID) (msg.NodeID, bool) {
	ep, ok := n.procs[p]
	if !ok {
		return 0, false
	}
	return ep.node, true
}

// Send transmits m with a delay drawn uniformly from [tmin, tmax].
func (n *Network) Send(m msg.Message) {
	n.SendWithDelay(m, n.drawDelay())
}

// SendWithDelay transmits m with an explicit delay, used by scripted
// scenarios that need exact timings. The delay is clamped into [tmin, tmax].
func (n *Network) SendWithDelay(m msg.Message, d time.Duration) {
	if d < n.cfg.MinDelay {
		d = n.cfg.MinDelay
	}
	if d > n.cfg.MaxDelay {
		d = n.cfg.MaxDelay
	}
	if src, ok := n.procs[m.From]; ok && n.down[src.node] {
		return // a process on a failed node emits nothing
	}
	n.stats.Sent++
	if m.To == msg.Device {
		// External messages leave the system; nothing to deliver.
		return
	}
	duplicate := false
	if n.chaos != nil {
		elapsed := n.eng.Now().Sub(vtime.Zero)
		v := n.chaos.FrameVerdict(m.From, m.To, elapsed, chaosFrameLen)
		if v.Drop {
			if heal := n.chaos.HealAt(m.From, m.To, elapsed); heal > elapsed {
				// Partition hit: the frame waits out the window, then
				// pays the retransmission timeout like any other drop.
				d += heal - elapsed
			}
			d += chaos.RetransmitDelay
		}
		// A corrupt verdict needs no delay model: the live writer puts the
		// bit-flipped copy and the clean retransmission in the same batch
		// and the receiver's CRC drops the garbage, so corruption is pure
		// fault accounting here.
		d += v.ExtraDelay
		duplicate = v.Duplicate
	}
	n.inTransit[m.Kind]++
	epoch := n.epoch
	// Per-channel FIFO: a later send never arrives before an earlier one.
	ch := pair{from: m.From, to: m.To}
	arrival := n.eng.Now().Add(d)
	if last := n.lastArrival[ch]; !arrival.After(last) {
		arrival = last + 1
	}
	n.lastArrival[ch] = arrival
	n.eng.Schedule(arrival, func() { n.deliver(m, epoch) })
	if duplicate {
		// The second copy lands right behind the first; the protocol's
		// ChanSeq dedup discards and re-acks it.
		n.inTransit[m.Kind]++
		dupArrival := arrival + 1
		n.lastArrival[ch] = dupArrival
		n.eng.Schedule(dupArrival, func() { n.deliver(m, epoch) })
	}
}

// Ack emits the delivery acknowledgement for an application-purpose message,
// addressed to its sender. The TB protocol treats a message as acknowledged
// only once this arrives.
func (n *Network) Ack(m msg.Message) {
	n.Send(msg.Message{Kind: msg.Ack, From: m.To, To: m.From, AckSN: m.SN})
}

// Flush discards every in-flight message. Recovery after a hardware fault
// rolls every process back to its stable checkpoint; the flush plays the role
// of the incarnation-number mechanism real systems use to reject messages
// from before the rollback.
func (n *Network) Flush() {
	n.epoch++
	kinds := make([]msg.Kind, 0, len(n.inTransit))
	for k := range n.inTransit {
		kinds = append(kinds, k)
	}
	slices.Sort(kinds)
	for _, k := range kinds {
		n.stats.Flushed += uint64(n.inTransit[k])
		n.inTransit[k] = 0
	}
	clear(n.lastArrival)
}

// InTransit returns the number of live in-flight messages of kind k.
func (n *Network) InTransit(k msg.Kind) int { return n.inTransit[k] }

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

func (n *Network) deliver(m msg.Message, epoch uint64) {
	if epoch != n.epoch {
		return // flushed while in flight
	}
	n.inTransit[m.Kind]--
	ep, ok := n.procs[m.To]
	if !ok {
		return
	}
	if n.down[ep.node] {
		n.stats.DroppedDown++
		return
	}
	n.stats.Delivered++
	if n.observer != nil {
		n.observer(m)
	}
	ep.handler(m)
}

func (n *Network) drawDelay() time.Duration {
	span := int64(n.cfg.MaxDelay - n.cfg.MinDelay)
	if span == 0 {
		return n.cfg.MinDelay
	}
	return n.cfg.MinDelay + time.Duration(n.eng.Rand().Int63n(span+1))
}
