package simnet

import (
	"testing"
	"time"

	"github.com/synergy-ft/synergy/internal/chaos"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

func withChaos(t *testing.T, cfg Config, spec chaos.Spec) (*chaosNet, *chaos.Injector) {
	t.Helper()
	eng, n := newNet(t, cfg)
	inj, err := chaos.NewInjector(spec)
	if err != nil {
		t.Fatal(err)
	}
	n.SetChaos(inj)
	return &chaosNet{eng: eng, n: n}, inj
}

type chaosNet struct {
	eng interface {
		Now() vtime.Time
		Run()
	}
	n *Network
}

func TestChaosDropAddsRetransmitDelay(t *testing.T) {
	cfg := Config{MinDelay: time.Millisecond, MaxDelay: time.Millisecond}
	// Drop every frame: each delivery pays exactly one retransmit delay on
	// top of the (degenerate) base delay.
	cn, inj := withChaos(t, cfg, chaos.Spec{Seed: 1, Drop: 1})
	var at []vtime.Time
	cn.n.Register(msg.P2, 3, func(m msg.Message) { at = append(at, cn.eng.Now()) })
	cn.n.Register(msg.P1Act, 1, func(m msg.Message) {})
	for i := 0; i < 10; i++ {
		cn.n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: uint64(i)})
	}
	cn.eng.Run()
	if len(at) != 10 {
		t.Fatalf("delivered %d, want 10 (drops must retransmit, not lose)", len(at))
	}
	// All frames are sent at t=0 on one channel: each delivery pays the
	// base delay plus the retransmit delay, and the FIFO tiebreak spaces
	// successive arrivals by 1ns.
	want := cfg.MaxDelay + chaos.RetransmitDelay
	for i, a := range at {
		if got := a.Sub(vtime.Zero); got != want+time.Duration(i) {
			t.Fatalf("dropped-frame delivery %d at +%v, want +%v", i, got, want+time.Duration(i))
		}
	}
	if st := inj.Stats(); st.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", st.Dropped)
	}
}

func TestChaosDuplicateDeliversTwice(t *testing.T) {
	cfg := Config{MinDelay: time.Millisecond, MaxDelay: time.Millisecond}
	cn, inj := withChaos(t, cfg, chaos.Spec{Seed: 1, Duplicate: 1})
	got := 0
	cn.n.Register(msg.P2, 3, func(m msg.Message) { got++ })
	cn.n.Register(msg.P1Act, 1, func(m msg.Message) {})
	for i := 0; i < 5; i++ {
		cn.n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: uint64(i)})
	}
	cn.eng.Run()
	if got != 10 {
		t.Fatalf("delivered %d copies, want 10 (each frame twice)", got)
	}
	if st := inj.Stats(); st.Duplicated != 5 {
		t.Fatalf("Duplicated = %d, want 5", st.Duplicated)
	}
	ns := cn.n.Stats()
	if ns.Delivered != 10 {
		t.Fatalf("network counted %d deliveries, want 10", ns.Delivered)
	}
}

func TestChaosPartitionHoldsUntilHeal(t *testing.T) {
	cfg := Config{MinDelay: time.Millisecond, MaxDelay: time.Millisecond}
	heal := 50 * time.Millisecond
	cn, _ := withChaos(t, cfg, chaos.Spec{Seed: 1, Partitions: []chaos.Partition{
		{A: msg.P1Act, B: msg.P2, Bidirectional: true, Start: 0, End: heal},
	}})
	var at vtime.Time
	cn.n.Register(msg.P2, 3, func(m msg.Message) { at = cn.eng.Now() })
	cn.n.Register(msg.P1Act, 1, func(m msg.Message) {})
	cn.n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2})
	cn.eng.Run()
	// The frame sent mid-partition arrives after the heal plus one
	// retransmit delay — mirroring the live TCP retry loop.
	want := heal + chaos.RetransmitDelay + cfg.MaxDelay
	if at.Sub(vtime.Zero) != want {
		t.Fatalf("partitioned delivery at +%v, want +%v", at.Sub(vtime.Zero), want)
	}
}

func TestChaosCorruptIsAccountingOnly(t *testing.T) {
	cfg := Config{MinDelay: time.Millisecond, MaxDelay: time.Millisecond}
	cn, inj := withChaos(t, cfg, chaos.Spec{Seed: 1, Corrupt: 1})
	var at []vtime.Time
	cn.n.Register(msg.P2, 3, func(m msg.Message) { at = append(at, cn.eng.Now()) })
	cn.n.Register(msg.P1Act, 1, func(m msg.Message) {})
	for i := 0; i < 8; i++ {
		cn.n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: uint64(i)})
	}
	cn.eng.Run()
	// Live, the CRC-failed copy is dropped and the clean copy of the same
	// batch still lands: corruption costs nothing in the simulator either.
	if len(at) != 8 {
		t.Fatalf("delivered %d, want 8", len(at))
	}
	for i, a := range at {
		want := cfg.MaxDelay + time.Duration(i) // FIFO tiebreak spaces same-instant sends by 1ns
		if got := a.Sub(vtime.Zero); got != want {
			t.Fatalf("corrupt-frame delivery %d at +%v, want +%v (no delay cost)", i, got, want)
		}
	}
	if st := inj.Stats(); st.Corrupted != 8 {
		t.Fatalf("Corrupted = %d, want 8", st.Corrupted)
	}
}

func TestChaosPreservesPerChannelFIFO(t *testing.T) {
	cfg := Config{MinDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	cn, _ := withChaos(t, cfg, chaos.Spec{
		Seed: 3, Drop: 0.3, Duplicate: 0.3, MaxExtraDelay: 5 * time.Millisecond,
		Partitions: []chaos.Partition{
			{A: msg.P1Act, B: msg.P2, Bidirectional: true, Start: 5 * time.Millisecond, End: 15 * time.Millisecond},
		},
	})
	var sns []uint64
	cn.n.Register(msg.P2, 3, func(m msg.Message) { sns = append(sns, m.SN) })
	cn.n.Register(msg.P1Act, 1, func(m msg.Message) {})
	for i := 0; i < 200; i++ {
		cn.n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: uint64(i)})
	}
	cn.eng.Run()
	// Duplicates repeat an SN; what chaos must never do is reorder: the
	// high-water mark can only move forward by one.
	var hw uint64
	seen := false
	for _, sn := range sns {
		if !seen {
			if sn != 0 {
				t.Fatalf("first delivery is SN %d, want 0", sn)
			}
			seen, hw = true, 0
			continue
		}
		switch {
		case sn <= hw:
			// duplicate of an already-delivered frame — fine
		case sn == hw+1:
			hw = sn
		default:
			t.Fatalf("SN %d delivered while high-water mark was %d: chaos reordered the channel", sn, hw)
		}
	}
	if hw != 199 {
		t.Fatalf("high-water mark %d, want 199 (every frame delivered)", hw)
	}
}
