package simnet

import (
	"testing"
	"time"

	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/sim"
	"github.com/synergy-ft/synergy/internal/vtime"
)

func newNet(t *testing.T, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New(1)
	n, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Config
		wantErr bool
	}{
		{name: "ok", give: Config{MinDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}},
		{name: "equal bounds", give: Config{MinDelay: time.Millisecond, MaxDelay: time.Millisecond}},
		{name: "zero", give: Config{}},
		{name: "inverted", give: Config{MinDelay: 2, MaxDelay: 1}, wantErr: true},
		{name: "negative", give: Config{MinDelay: -1, MaxDelay: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(sim.New(1), tt.give)
			if (err != nil) != tt.wantErr {
				t.Fatalf("New() err = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestDeliveryWithinBounds(t *testing.T) {
	cfg := Config{MinDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	eng, n := newNet(t, cfg)
	var deliveredAt []vtime.Time
	n.Register(msg.P2, 3, func(m msg.Message) { deliveredAt = append(deliveredAt, eng.Now()) })
	n.Register(msg.P1Act, 1, func(m msg.Message) {})
	for i := 0; i < 100; i++ {
		n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: uint64(i)})
	}
	eng.Run()
	if len(deliveredAt) != 100 {
		t.Fatalf("delivered %d, want 100", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		d := at.Sub(vtime.Zero)
		if d < cfg.MinDelay || d > cfg.MaxDelay {
			t.Fatalf("delivery delay %v outside [%v, %v]", d, cfg.MinDelay, cfg.MaxDelay)
		}
	}
}

func TestSendWithDelayClamped(t *testing.T) {
	cfg := Config{MinDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond}
	eng, n := newNet(t, cfg)
	var at vtime.Time
	n.Register(msg.P2, 3, func(m msg.Message) { at = eng.Now() })
	n.SendWithDelay(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2}, time.Hour)
	eng.Run()
	if at.Sub(vtime.Zero) != cfg.MaxDelay {
		t.Fatalf("delay clamped to %v, want %v", at.Sub(vtime.Zero), cfg.MaxDelay)
	}
}

func TestExternalMessagesLeaveSystem(t *testing.T) {
	eng, n := newNet(t, Config{MaxDelay: time.Millisecond})
	n.Send(msg.Message{Kind: msg.External, From: msg.P1Act, To: msg.Device})
	eng.Run()
	if got := n.Stats().Sent; got != 1 {
		t.Fatalf("Sent = %d, want 1", got)
	}
	if got := n.Stats().Delivered; got != 0 {
		t.Fatalf("Delivered = %d, want 0", got)
	}
}

func TestDownNodeDropsArrivals(t *testing.T) {
	eng, n := newNet(t, Config{MaxDelay: time.Millisecond})
	delivered := 0
	n.Register(msg.P2, 3, func(m msg.Message) { delivered++ })
	n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2})
	n.SetNodeDown(3, true)
	eng.Run()
	if delivered != 0 {
		t.Fatal("message delivered to down node")
	}
	if n.Stats().DroppedDown != 1 {
		t.Fatalf("DroppedDown = %d", n.Stats().DroppedDown)
	}
	n.SetNodeDown(3, false)
	n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2})
	eng.Run()
	if delivered != 1 {
		t.Fatal("message not delivered after repair")
	}
}

func TestDownNodeSuppressesSends(t *testing.T) {
	eng, n := newNet(t, Config{MaxDelay: time.Millisecond})
	delivered := 0
	n.Register(msg.P1Act, 1, func(m msg.Message) {})
	n.Register(msg.P2, 3, func(m msg.Message) { delivered++ })
	n.SetNodeDown(1, true)
	n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2})
	eng.Run()
	if delivered != 0 || n.Stats().Sent != 0 {
		t.Fatalf("send from down node not suppressed: delivered=%d sent=%d", delivered, n.Stats().Sent)
	}
}

func TestAckAddressing(t *testing.T) {
	eng, n := newNet(t, Config{MaxDelay: time.Millisecond})
	var got msg.Message
	n.Register(msg.P1Act, 1, func(m msg.Message) { got = m })
	n.Register(msg.P2, 3, func(m msg.Message) {})
	orig := msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: 7}
	n.Ack(orig)
	eng.Run()
	if got.Kind != msg.Ack || got.From != msg.P2 || got.To != msg.P1Act || got.AckSN != 7 {
		t.Fatalf("ack = %+v", got)
	}
}

func TestFlushDiscardsInTransit(t *testing.T) {
	eng, n := newNet(t, Config{MinDelay: time.Second, MaxDelay: time.Second})
	delivered := 0
	n.Register(msg.P2, 3, func(m msg.Message) { delivered++ })
	n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2})
	if n.InTransit(msg.Internal) != 1 {
		t.Fatalf("InTransit = %d, want 1", n.InTransit(msg.Internal))
	}
	n.Flush()
	eng.Run()
	if delivered != 0 {
		t.Fatal("flushed message was delivered")
	}
	if n.InTransit(msg.Internal) != 0 {
		t.Fatalf("InTransit after flush = %d", n.InTransit(msg.Internal))
	}
	if n.Stats().Flushed != 1 {
		t.Fatalf("Flushed = %d", n.Stats().Flushed)
	}
	// Traffic after the flush flows normally.
	n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2})
	eng.Run()
	if delivered != 1 {
		t.Fatal("post-flush message not delivered")
	}
}

func TestInTransitTracking(t *testing.T) {
	eng, n := newNet(t, Config{MinDelay: time.Second, MaxDelay: time.Second})
	n.Register(msg.P1Sdw, 2, func(m msg.Message) {})
	n.Send(msg.Message{Kind: msg.PassedAT, From: msg.P2, To: msg.P1Sdw})
	n.Send(msg.Message{Kind: msg.PassedAT, From: msg.P2, To: msg.P1Sdw})
	if n.InTransit(msg.PassedAT) != 2 {
		t.Fatalf("InTransit = %d, want 2", n.InTransit(msg.PassedAT))
	}
	eng.Run()
	if n.InTransit(msg.PassedAT) != 0 {
		t.Fatalf("InTransit after delivery = %d", n.InTransit(msg.PassedAT))
	}
}

func TestObserverSeesDeliveries(t *testing.T) {
	eng, n := newNet(t, Config{MaxDelay: time.Millisecond})
	var seen []msg.Message
	n.Observe(func(m msg.Message) { seen = append(seen, m) })
	n.Register(msg.P2, 3, func(m msg.Message) {})
	n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: 4})
	eng.Run()
	if len(seen) != 1 || seen[0].SN != 4 {
		t.Fatalf("observer saw %+v", seen)
	}
}

func TestPerChannelFIFO(t *testing.T) {
	eng, n := newNet(t, Config{MinDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond})
	var got []uint64
	n.Register(msg.P2, 3, func(m msg.Message) { got = append(got, m.SN) })
	for i := uint64(0); i < 200; i++ {
		n.Send(msg.Message{Kind: msg.Internal, From: msg.P1Act, To: msg.P2, SN: i})
	}
	eng.Run()
	if len(got) != 200 {
		t.Fatalf("delivered %d, want 200", len(got))
	}
	for i, sn := range got {
		if sn != uint64(i) {
			t.Fatalf("FIFO violated at %d: got SN %d", i, sn)
		}
	}
}

func TestNodeOf(t *testing.T) {
	_, n := newNet(t, Config{MaxDelay: time.Millisecond})
	n.Register(msg.P2, 3, func(m msg.Message) {})
	node, ok := n.NodeOf(msg.P2)
	if !ok || node != 3 {
		t.Fatalf("NodeOf = %v,%v", node, ok)
	}
	if _, ok := n.NodeOf(msg.P1Act); ok {
		t.Fatal("NodeOf unknown process should be !ok")
	}
}
