// Package stats provides the summary statistics the experiment harness
// reports: means with confidence intervals, percentiles, and labelled series
// formatting for table/figure regeneration.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations of one scalar metric.
type Sample struct {
	values []float64
	sum    float64
	sumSq  float64
}

// Add records an observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Merge folds another sample's observations into s.
func (s *Sample) Merge(o *Sample) {
	for _, v := range o.values {
		s.Add(v)
	}
}

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance.
func (s *Sample) Variance() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	v := (s.sumSq - s.sum*s.sum/n) / (n - 1)
	if v < 0 {
		return 0 // numerical noise
	}
	return v
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Sample) CI95() float64 {
	n := float64(len(s.values))
	if n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(n)
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	max := 0.0
	for i, v := range s.values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Point is one (x, y) entry of a plotted series, with the y confidence
// half-width when available.
type Point struct {
	X, Y, CI float64
}

// Series is a labelled sequence of points, one curve of a figure.
type Series struct {
	// Label names the curve (e.g. "E[Dco]").
	Label string
	// Points holds the curve in x order.
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y, ci float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, CI: ci})
}

// FormatTable renders one or more series as an aligned text table with a
// shared x column, in the row form the paper's figures plot.
func FormatTable(xLabel string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteString("\n")
	rows := 0
	for _, s := range series {
		if len(s.Points) > rows {
			rows = len(s.Points)
		}
	}
	for i := 0; i < rows; i++ {
		wroteX := false
		for _, s := range series {
			if i < len(s.Points) && !wroteX {
				fmt.Fprintf(&b, "%-14.6g", s.Points[i].X)
				wroteX = true
				break
			}
		}
		if !wroteX {
			fmt.Fprintf(&b, "%-14s", "")
		}
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " %16.6g", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, " %16s", "")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
