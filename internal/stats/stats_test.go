package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 ||
		s.Percentile(50) != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
}

func TestMeanAndVariance(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic data set is 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7.0)) > 1e-9 {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 2))
	}
	if small.CI95() <= large.CI95() {
		t.Fatalf("CI should shrink with sample size: %v vs %v", small.CI95(), large.CI95())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		give float64
		want float64
	}{
		{0, 1}, {50, 50}, {95, 95}, {100, 100},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.give); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestMax(t *testing.T) {
	var s Sample
	for _, v := range []float64{-5, -2, -9} {
		s.Add(v)
	}
	if got := s.Max(); got != -2 {
		t.Fatalf("Max = %v, want -2", got)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(vs []float64) bool {
		var s Sample
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in sumSq.
			s.Add(math.Mod(v, 1e6))
		}
		return s.Variance() >= 0 && s.CI95() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesAndFormatTable(t *testing.T) {
	var co, wt Series
	co.Label = "E[Dco]"
	wt.Label = "E[Dwt]"
	co.Add(60, 5.1, 0.2)
	co.Add(80, 5.3, 0.2)
	wt.Add(60, 181, 9)
	wt.Add(80, 240, 12)
	out := FormatTable("rate", co, wt)
	for _, want := range []string{"rate", "E[Dco]", "E[Dwt]", "60", "181", "240"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
}

func TestFormatTableUnevenSeries(t *testing.T) {
	var a, b Series
	a.Label = "a"
	b.Label = "b"
	a.Add(1, 10, 0)
	a.Add(2, 20, 0)
	b.Add(1, 30, 0)
	out := FormatTable("x", a, b)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want 3:\n%s", len(lines), out)
	}
}
