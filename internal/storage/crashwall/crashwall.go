// Package crashwall exhaustively explores crash points in the durable
// stable-storage path. It drives a fixed commit/compact/truncate workload
// against an in-memory disk model (storage.MemVFS), simulates a crash after
// every single IO operation, enumerates the disk states that crash could
// leave behind under a strict post-crash model — the suffix written after
// the last fsync may be lost, torn, or reordered; renames are atomic but
// un-persisted until the directory fsync — and runs full recovery
// (OpenFileVFS → DecodeLog → Stable.Load → ResumeFromStable) on every one
// of them, asserting the durability invariants:
//
//   - recovery never errors and never panics, whatever the disk holds;
//   - no fsync-acked round is ever lost: every round whose Commit returned
//     success (and that the retention window still guarantees) is recovered
//     with exactly the bytes that were committed;
//   - recovered rounds are a strictly increasing sequence — the intact
//     prefix, with any torn tail discarded per the torn-tail rule;
//   - a durably truncated round never resurrects;
//   - every recovered payload is one the workload actually wrote (nothing
//     is fabricated by recovery); and
//   - the recovered log accepts a fresh commit, which a reopen then sees.
//
// The wall is the acceptance gate for any rework of the commit path (group
// commit, async acks): a change that loses an acked round at any crash
// point fails it.
package crashwall

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/storage"
	"github.com/synergy-ft/synergy/internal/tb"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// logPath is the stable log the workload commits to (one directory, like
// the live middleware's layout).
const logPath = "wall/p2.stable"

// retention is the workload's in-memory retention window; rounds that slide
// out of it may be compacted away, so only the window is obligated.
const retention = 4

// Options configures an exploration.
type Options struct {
	// MaxOps bounds how many crash points are explored (the first MaxOps IO
	// operations of the workload). 0 explores every operation.
	MaxOps int
	// Mutate, when set, is applied to every post-crash disk image before
	// recovery runs — a test hook that injects damage the wall must catch
	// (losing an acked round has to produce violations, or the wall proves
	// nothing).
	Mutate func(img *storage.DiskImage)
}

// Violation is one invariant breach at one crash point.
type Violation struct {
	// Op is the crash point: the workload IO operation after which the
	// machine died.
	Op int `json:"op"`
	// Image labels the post-crash disk state (which pending effects
	// persisted).
	Image string `json:"image"`
	// Invariant names the broken rule.
	Invariant string `json:"invariant"`
	// Detail is a human-readable elaboration.
	Detail string `json:"detail"`
}

// Result summarizes an exploration.
type Result struct {
	// Ops is the workload's total IO operation count.
	Ops int `json:"ops"`
	// Explored is how many crash points were simulated.
	Explored int `json:"explored"`
	// Images is how many distinct post-crash disk states were recovered.
	Images int `json:"images"`
	// Violations holds every invariant breach found (empty on a green wall).
	Violations []Violation `json:"violations,omitempty"`
}

// model tracks what the workload is owed by the disk: the obligations and
// prohibitions each acked operation creates.
type model struct {
	// obligated maps rounds whose Commit was acknowledged (and that the
	// retention window still covers) to their exact payload.
	obligated map[uint64][]byte
	// forbidden marks rounds durably truncated away (and not since
	// re-attempted): recovery must never resurrect them.
	forbidden map[uint64]bool
	// attempts lists every payload ever written for a round — acked or not
	// — that could plausibly survive a crash. Recovery may surface any of
	// them, but nothing else.
	attempts map[uint64][][]byte
	// attemptSeq numbers commit attempts per round so every payload is
	// unique (a resurrected stale payload is then distinguishable).
	attemptSeq map[uint64]int
}

func newModel() *model {
	return &model{
		obligated:  map[uint64][]byte{},
		forbidden:  map[uint64]bool{},
		attempts:   map[uint64][][]byte{},
		attemptSeq: map[uint64]int{},
	}
}

// payloadFor builds the checkpoint payload for one commit attempt, byte-for-
// byte what Stable.Begin encodes.
func (m *model) payloadFor(round uint64) (*checkpoint.Checkpoint, []byte) {
	m.attemptSeq[round]++
	c := checkpoint.New(checkpoint.Stable, msg.P2)
	c.State.Step = round*1000 + uint64(m.attemptSeq[round])
	return c, checkpoint.AppendEncode(nil, c)
}

// sortedRounds returns m's keys in ascending order: map iteration is
// order-randomized per run, and the wall's violation reports (and the detflow
// discipline) demand deterministic traversal.
func sortedRounds[V any](m map[uint64]V) []uint64 {
	ks := make([]uint64, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	slices.Sort(ks)
	return ks
}

// trimObligations drops obligated rounds the retention window no longer
// guarantees after committing round.
func (m *model) trimObligations(round uint64) {
	window := sortedRounds(m.obligated)
	for len(window) > retention {
		delete(m.obligated, window[0])
		window = window[1:]
	}
}

// runWorkload drives the fixed commit/compact/truncate script against fs,
// tolerating every error (after the crash point all IO fails), and returns
// the obligations the acked prefix established.
func runWorkload(fs storage.VFS) *model {
	m := newModel()
	fb, _, err := storage.OpenFileVFS(logPath, fs)
	if err != nil {
		return m // crashed during the initial open: nothing owed
	}
	defer fb.Close()
	var s storage.Stable
	s.SetRetention(retention)
	s.SetBackend(fb)

	commit := func(round uint64) {
		c, payload := m.payloadFor(round)
		// A fresh attempt makes this round's presence plausible again,
		// whatever a prior truncation decreed.
		delete(m.forbidden, round)
		m.attempts[round] = append(m.attempts[round], payload)
		if err := s.Begin(c); err != nil {
			return
		}
		if err := s.Commit(round); err != nil {
			s.Abandon()
			return
		}
		m.obligated[round] = payload
		m.trimObligations(round)
	}
	truncate := func(above uint64) {
		// The compaction a truncate runs may destroy newer rounds even if
		// it fails before acking, so they stop being obligated the moment
		// the attempt starts; they become forbidden only once it acks.
		for _, r := range sortedRounds(m.obligated) {
			if r > above {
				delete(m.obligated, r)
			}
		}
		if err := s.TruncateAbove(above); err != nil {
			return
		}
		for _, r := range sortedRounds(m.attempts) {
			if r > above {
				m.forbidden[r] = true
				m.attempts[r] = nil
			}
		}
	}

	// The script: enough commits to trigger slack compaction (retention 4 +
	// slack 4), a durable truncation, and post-truncate recommits — every
	// branch of the backend's IO surface.
	for r := uint64(1); r <= 8; r++ {
		commit(r)
	}
	truncate(6)
	for r := uint64(7); r <= 10; r++ {
		commit(r)
	}
	return m
}

// Explore runs the crash wall and returns what it found. It never returns
// an error: every failure mode is a Violation.
func Explore(opts Options) Result {
	// Measurement pass: run the workload to completion to learn its length.
	probe := storage.NewMemVFS()
	runWorkload(probe)
	res := Result{Ops: probe.Ops()}

	limit := res.Ops
	if opts.MaxOps > 0 && opts.MaxOps < limit {
		limit = opts.MaxOps
	}
	for k := 0; k <= limit; k++ {
		fs := storage.NewMemVFS()
		fs.SetCrashAfter(k)
		m := runWorkload(fs)
		res.Explored++
		for _, img := range fs.CrashImages() {
			if opts.Mutate != nil {
				opts.Mutate(&img)
			}
			res.Images++
			res.Violations = append(res.Violations, checkImage(k, img, m)...)
		}
	}
	return res
}

// checkImage runs full recovery on one post-crash disk image and returns
// every invariant breach.
func checkImage(op int, img storage.DiskImage, m *model) (vs []Violation) {
	add := func(invariant, format string, args ...any) {
		vs = append(vs, Violation{Op: op, Image: img.Label, Invariant: invariant,
			Detail: fmt.Sprintf(format, args...)})
	}
	defer func() {
		if r := recover(); r != nil {
			add("no-panic", "recovery panicked: %v", r)
		}
	}()

	fs := storage.FromImage(img)
	fb, info, err := storage.OpenFileVFS(logPath, fs)
	if err != nil {
		add("recovery-clean", "OpenFileVFS failed: %v", err)
		return vs
	}
	defer fb.Close()
	recs := info.Records

	// Recovered rounds are strictly increasing (the monotone intact prefix).
	for i := 1; i < len(recs); i++ {
		if recs[i].Round <= recs[i-1].Round {
			add("monotone-prefix", "round %d follows %d", recs[i].Round, recs[i-1].Round)
		}
	}
	recovered := map[uint64][]byte{}
	for _, r := range recs {
		recovered[r.Round] = r.Data
	}

	// No fsync-acked round is ever lost, and its bytes are exact.
	for _, round := range sortedRounds(m.obligated) {
		want := m.obligated[round]
		got, ok := recovered[round]
		if !ok {
			add("acked-round-durable", "acked round %d lost", round)
			continue
		}
		if !bytes.Equal(got, want) {
			add("acked-round-durable", "acked round %d has wrong bytes (%d vs %d)", round, len(got), len(want))
		}
	}

	// A durably truncated round never resurrects, and recovery never
	// fabricates a payload the workload did not write.
	for _, round := range sortedRounds(recovered) {
		data := recovered[round]
		if m.forbidden[round] {
			add("truncated-stays-dead", "truncated round %d resurrected", round)
		}
		match := false
		for _, attempt := range m.attempts[round] {
			if bytes.Equal(data, attempt) {
				match = true
				break
			}
		}
		if !match {
			add("no-fabrication", "round %d recovered with bytes never written for it", round)
		}
	}

	// The TB recovery entry point accepts the recovered history.
	cp, cperr := newRecoveryCheckpointer()
	if cperr != nil {
		add("recovery-clean", "build checkpointer: %v", cperr)
		return vs
	}
	if err := cp.Stable.Load(recs); err != nil {
		add("recovery-clean", "Stable.Load: %v", err)
		return vs
	}
	cp.Stable.SetBackend(fb)
	if len(recs) == 0 {
		if _, err := cp.ResumeFromStable(); err != tb.ErrNoStableCheckpoint {
			add("recovery-clean", "empty history resume: %v", err)
		}
	} else {
		restored, err := cp.ResumeFromStable()
		if err != nil {
			add("recovery-clean", "ResumeFromStable: %v", err)
			return vs
		}
		last := recs[len(recs)-1].Round
		if cp.Ndc() != last {
			add("recovery-clean", "Ndc = %d after resume, want %d", cp.Ndc(), last)
		}
		if restored == nil || restored.State == nil {
			add("recovery-clean", "resumed checkpoint did not decode")
		}
	}

	// The recovered log is writable: a fresh commit lands and a reopen
	// sees it.
	next := uint64(1)
	if len(recs) > 0 {
		next = recs[len(recs)-1].Round + 1
	}
	fresh := checkpoint.New(checkpoint.Stable, msg.P2)
	fresh.State.Step = next * 1_000_000
	want := checkpoint.AppendEncode(nil, fresh)
	if err := cp.Stable.Begin(fresh); err != nil {
		add("writable-after-recovery", "Begin: %v", err)
		return vs
	}
	if err := cp.Stable.Commit(next); err != nil {
		add("writable-after-recovery", "Commit(%d): %v", next, err)
		return vs
	}
	fb2, info2, err := storage.OpenFileVFS(logPath, fs)
	if err != nil {
		add("writable-after-recovery", "reopen: %v", err)
		return vs
	}
	defer fb2.Close()
	found := false
	for _, r := range info2.Records {
		if r.Round == next {
			found = bytes.Equal(r.Data, want)
		}
	}
	if !found {
		add("writable-after-recovery", "post-recovery round %d missing or wrong after reopen", next)
	}
	return vs
}

// nullRuntime satisfies tb.Runtime without any clock: recovery alone never
// arms a timer.
type nullRuntime struct{}

func (nullRuntime) Now() vtime.Time { return 0 }

func (nullRuntime) After(time.Duration, func()) func() { return func() {} }

// nullHost satisfies tb.Host for a checkpointer that only ever resumes.
type nullHost struct{}

func (nullHost) EffectiveDirty() bool { return false }

func (nullHost) Snapshot(k checkpoint.Kind) *checkpoint.Checkpoint {
	return checkpoint.New(k, msg.P2)
}

func (nullHost) LatestVolatile() (*checkpoint.Checkpoint, bool) { return nil, false }

func (nullHost) ReleaseHeld() {}

// newRecoveryCheckpointer builds the minimal checkpointer the recovery
// invariants are checked through — the same ResumeFromStable entry point the
// live middleware uses after a node restart.
func newRecoveryCheckpointer() (*tb.Checkpointer, error) {
	cfg := tb.Config{
		Variant:  tb.Adapted,
		Interval: 100 * time.Millisecond,
		Clock:    vtime.ClockConfig{MaxDeviation: time.Millisecond, DriftRate: 1e-4},
		MaxDelay: 2 * time.Millisecond,
	}
	clock := vtime.NewClock(cfg.Clock, rand.New(rand.NewSource(1)))
	return tb.NewCheckpointer(msg.P2, cfg, clock, nullRuntime{}, nullHost{}, nil)
}
