package crashwall

import (
	"testing"

	"github.com/synergy-ft/synergy/internal/storage"
)

// TestCrashWallHoldsAtEveryOp is the wall itself: a crash after every single
// IO operation of the commit/compact/truncate workload, every post-crash
// disk state, full recovery on each — zero violations.
func TestCrashWallHoldsAtEveryOp(t *testing.T) {
	res := Explore(Options{})
	if res.Ops < 20 {
		t.Fatalf("workload performed only %d IO ops; the script should cover commits, compactions and a truncate", res.Ops)
	}
	if res.Explored != res.Ops+1 {
		t.Fatalf("explored %d crash points for %d ops, want every op plus the pre-IO point", res.Explored, res.Ops)
	}
	if res.Images <= res.Explored {
		t.Fatalf("recovered %d images over %d crash points; the post-crash model should fan out", res.Images, res.Explored)
	}
	if len(res.Violations) != 0 {
		for i, v := range res.Violations {
			if i == 10 {
				t.Logf("... %d more", len(res.Violations)-10)
				break
			}
			t.Logf("op %d [%s] %s: %s", v.Op, v.Image, v.Invariant, v.Detail)
		}
		t.Fatalf("%d invariant violations", len(res.Violations))
	}
}

// TestCrashWallBoundedRun exercises the MaxOps bound the local check.sh
// stage uses.
func TestCrashWallBoundedRun(t *testing.T) {
	res := Explore(Options{MaxOps: 10})
	if res.Explored != 11 {
		t.Fatalf("explored %d crash points with MaxOps=10, want 11", res.Explored)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("%d violations in bounded run: %+v", len(res.Violations), res.Violations[0])
	}
}

// TestCrashWallCatchesAckedRoundLoss proves the wall is load-bearing: a
// mutation that silently drops the newest intact record from every
// post-crash image — exactly what a commit path that acks before fsync
// would produce — must fail the wall with acked-round-durable violations.
func TestCrashWallCatchesAckedRoundLoss(t *testing.T) {
	dropNewest := func(img *storage.DiskImage) {
		for path, data := range img.Files {
			recs, _, _ := storage.DecodeLog(data)
			if len(recs) == 0 {
				continue
			}
			rebuilt := append([]byte(nil), data[:8]...) // keep the magic
			for _, r := range recs[:len(recs)-1] {
				rebuilt = storage.AppendRecord(rebuilt, r)
			}
			img.Files[path] = rebuilt
		}
	}
	res := Explore(Options{Mutate: dropNewest})
	if len(res.Violations) == 0 {
		t.Fatal("wall passed despite every image losing its newest acked round")
	}
	sawLoss := false
	for _, v := range res.Violations {
		if v.Invariant == "acked-round-durable" {
			sawLoss = true
			break
		}
	}
	if !sawLoss {
		t.Fatalf("no acked-round-durable violation among %d findings; the loss went unattributed", len(res.Violations))
	}
}
