package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// This file adds the durable half of stable storage: a file-backed Backend
// the live middleware plugs into a Stable so committed checkpoint rounds
// survive a real node-process crash. The simulator keeps the in-memory
// default (no backend), so the discrete-event experiments stay free of I/O.
//
// On-disk format (everything little-endian):
//
//	file   = magic | record*
//	magic  = "SYNSTBL1" (8 bytes)
//	record = round uint64 | len uint32 | crc uint32 | data[len]
//
// where crc is the CRC-32 (IEEE) of data. Records are append-only and carry
// strictly increasing rounds; each commit appends one record and fsyncs.
// Compaction — triggered when the log accumulates evicted rounds, and on
// every durable truncation — rewrites the retained records to a temp file,
// fsyncs it, atomically renames it over the log, and fsyncs the directory,
// so a crash at any instant leaves either the old intact log or the new one.
//
// Recovery scans the log front to back and stops at the first torn or
// corrupt record (short header, absurd length, CRC mismatch, non-increasing
// round): everything before it is the durable history, and the newest round
// in that prefix is the one recovery restores. The damaged tail is discarded
// by an immediate compaction, so a second crash cannot resurrect it.
//
// All file IO goes through a VFS (vfs.go). The OS implementation is the
// default; FaultVFS injects EIO/short-write/bit-flip faults for tests and
// chaos scenarios, and MemVFS models post-crash disk states for the
// crash-point explorer (internal/storage/crashwall). A failed append or
// fsync marks the physical tail torn: the retry path (and every later
// commit) then rewrites the whole log via compaction instead of appending
// again, because a blind re-append would place a duplicate round after the
// damage and recovery would discard every acked round behind it.

// logMagic identifies (and versions) a stable-storage log file.
const logMagic = "SYNSTBL1"

// recordHeaderSize is round (8) + len (4) + crc (4).
const recordHeaderSize = 16

// maxRecordSize bounds a single record's data length; a length field above
// it is treated as corruption rather than an allocation request. Checkpoints
// are a few hundred bytes; 1 MiB leaves three orders of magnitude of slack.
const maxRecordSize = 1 << 20

// compactSlack is how many appended records beyond the retained window the
// log may accumulate before a commit triggers compaction. Retention is
// typically 2–8 rounds; a slack of 4× keeps renames rare while bounding the
// file to a handful of KiB.
const compactSlack = 4

// ErrLogCorrupt wraps recovery findings about a damaged log prefix (the
// magic header itself being unreadable). Damaged tails are not errors: they
// are truncated away and reported via RecoveredInfo.
var ErrLogCorrupt = errors.New("storage: stable log corrupt")

// Record is one durable committed round.
type Record struct {
	// Round is the TB stable-checkpoint round number.
	Round uint64
	// Data is the encoded checkpoint.
	Data []byte
}

// Backend persists a Stable's committed rounds. Implementations must make
// Commit durable before returning: once it reports success the round must
// survive a process crash. A failed Commit must be retryable: the caller may
// invoke Commit again with the same arguments, and the implementation must
// not let the failed attempt's partial effects corrupt the log.
type Backend interface {
	// Commit durably appends one committed round. keepFrom is the lowest
	// round the in-memory retention window still holds after the commit;
	// the backend may discard older rounds at its leisure.
	Commit(round uint64, data []byte, keepFrom uint64) error
	// TruncateAbove durably discards every round above the given one
	// (recovery to an older round invalidates everything after it).
	TruncateAbove(round uint64) error
	// Close releases the backing resources (a killed node's file handle).
	Close() error
}

// FileBackend is the file-backed Backend. It is not safe for concurrent use;
// the Stable it serves is already serialized under its node's lock.
type FileBackend struct {
	path string
	dir  string
	fs   VFS
	f    File

	// Obs holds the backend's metrics; the zero value disables them.
	Obs FileObs

	// PreSync, when set, runs immediately before Commit's fsync. Fault
	// injection hooks in here (a chaos fsync-stall window sleeps inside
	// the closure) so the storage layer itself stays free of clocks.
	PreSync func()

	// live mirrors the records currently relevant in the log, oldest
	// first, so compaction can rewrite without re-reading the file.
	live []Record
	// logged counts records physically present in the log file (live
	// records plus evicted-but-not-yet-compacted ones).
	logged int
	// tornTail is set when an append or fsync fails: the physical tail
	// may hold a torn or duplicate record, so the next commit must
	// rewrite the log (compact) rather than append after the damage.
	tornTail bool
	// closed is set by Close; further commits are rejected.
	closed bool
}

// RecoveredInfo describes what recovery found in an existing log.
type RecoveredInfo struct {
	// Records are the intact rounds, oldest first.
	Records []Record
	// TailDamaged reports that a torn or corrupt tail was detected and
	// discarded (recovery fell back to the newest intact round).
	TailDamaged bool
	// DroppedBytes is the size of the discarded tail.
	DroppedBytes int
}

// OpenFile opens (creating if absent) the stable log at path on the real
// filesystem, recovers its intact records, durably discards any damaged
// tail, and returns the backend ready for appends alongside what was
// recovered.
func OpenFile(path string) (*FileBackend, RecoveredInfo, error) {
	return OpenFileVFS(path, OSVFS{})
}

// OpenFileVFS is OpenFile against an explicit VFS (a fault injector or the
// crash-point explorer's in-memory disk model).
func OpenFileVFS(path string, fs VFS) (*FileBackend, RecoveredInfo, error) {
	var info RecoveredInfo
	data, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, info, fmt.Errorf("storage: read stable log: %w", err)
	}
	recs, intact, damaged := DecodeLog(data)
	info.Records = recs
	info.TailDamaged = damaged
	info.DroppedBytes = len(data) - intact

	b := &FileBackend{path: path, dir: filepath.Dir(path), fs: fs, live: recs, logged: len(recs)}
	if damaged {
		// Rewrite the intact prefix so the damaged tail cannot be
		// misread after a later append lands on top of it.
		if err := b.compact(); err != nil {
			return nil, info, err
		}
	} else if err := b.openAppend(); err != nil {
		return nil, info, err
	}
	return b, info, nil
}

var _ Backend = (*FileBackend)(nil)

// DecodeLog parses a stable log image, returning the intact records (oldest
// first), the byte length of the intact prefix, and whether a damaged
// (torn or corrupt) tail was detected after it. It never panics, whatever
// the input: this is the surface the fuzz target drives.
func DecodeLog(data []byte) (recs []Record, intact int, damaged bool) {
	if len(data) == 0 {
		return nil, 0, false
	}
	if len(data) < len(logMagic) || string(data[:len(logMagic)]) != string(logMagic) {
		return nil, 0, true
	}
	off := len(logMagic)
	lastRound := uint64(0)
	for off < len(data) {
		if len(data)-off < recordHeaderSize {
			return recs, off, true // torn header
		}
		round := binary.LittleEndian.Uint64(data[off:])
		n := binary.LittleEndian.Uint32(data[off+8:])
		crc := binary.LittleEndian.Uint32(data[off+12:])
		if n > maxRecordSize {
			return recs, off, true // absurd length: corruption
		}
		body := off + recordHeaderSize
		if len(data)-body < int(n) {
			return recs, off, true // torn body
		}
		payload := data[body : body+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, true // bit-flipped record
		}
		if round <= lastRound {
			// Rounds are strictly increasing; a duplicate or regressed
			// round marks the start of garbage (e.g. a replayed commit
			// marker). Fall back to the newest intact round before it.
			return recs, off, true
		}
		lastRound = round
		recs = append(recs, Record{Round: round, Data: append([]byte(nil), payload...)})
		off = body + int(n)
	}
	return recs, off, false
}

// AppendRecord serializes one record onto buf (the exact bytes Commit
// appends to the log). Exposed for tests and the fuzz target's seed corpus.
func AppendRecord(buf []byte, r Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.Round)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Data)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(r.Data))
	return append(buf, r.Data...)
}

// Commit implements Backend: append one record, fsync, and compact when the
// log has accumulated enough evicted rounds. A failed Commit may be retried
// with the same arguments: the retained window is updated idempotently (a
// round already recorded by the failed attempt is replaced, not duplicated)
// and a torn physical tail is repaired by a full rewrite instead of a
// second append.
func (b *FileBackend) Commit(round uint64, data []byte, keepFrom uint64) error {
	if b.closed {
		return fmt.Errorf("storage: stable log %s is closed", b.path)
	}
	commitStart := b.Obs.CommitLatency.StartTimer()
	rec := Record{Round: round, Data: append([]byte(nil), data...)}
	kept := b.live[:0]
	for _, r := range b.live {
		if r.Round >= keepFrom && r.Round != round {
			kept = append(kept, r)
		}
	}
	b.live = append(kept, rec)

	if b.tornTail || b.f == nil {
		// A previous append, fsync or compaction failed: the log's tail
		// is suspect (or the file handle is gone). Rewrite the whole log
		// — which both repairs the tail and makes this round durable.
		err := b.compact()
		b.Obs.CommitLatency.ObserveSince(commitStart)
		return err
	}

	if _, err := b.f.Write(AppendRecord(nil, rec)); err != nil {
		b.tornTail = true
		return fmt.Errorf("storage: append round %d: %w", round, err)
	}
	if b.PreSync != nil {
		b.PreSync()
	}
	fsyncStart := b.Obs.FsyncLatency.StartTimer()
	if err := b.f.Sync(); err != nil {
		// The record's bytes may or may not have reached the platter;
		// either way the tail is unaccounted for until rewritten.
		b.tornTail = true
		return fmt.Errorf("storage: fsync round %d: %w", round, err)
	}
	b.Obs.FsyncLatency.ObserveSince(fsyncStart)
	b.logged++
	if b.logged > len(b.live)+compactSlack {
		err := b.compact()
		b.Obs.CommitLatency.ObserveSince(commitStart)
		return err
	}
	b.Obs.CommitLatency.ObserveSince(commitStart)
	return nil
}

// TruncateAbove implements Backend: durably drop rounds above round via a
// full rewrite (recovery must never resurrect a rolled-back round).
func (b *FileBackend) TruncateAbove(round uint64) error {
	if b.closed {
		return fmt.Errorf("storage: stable log %s is closed", b.path)
	}
	kept := b.live[:0]
	for _, r := range b.live {
		if r.Round <= round {
			kept = append(kept, r)
		}
	}
	b.live = kept
	return b.compact()
}

// compact rewrites the live records through a temp file, an fsync, an atomic
// rename and a directory fsync, then reopens the log for appends. Any
// failure leaves the old log untouched on disk (the rename never happened,
// or happened atomically) and the backend retryable: the next Commit or
// TruncateAbove compacts again.
func (b *FileBackend) compact() error {
	b.Obs.Compactions.Inc()
	if b.f != nil {
		b.f.Close()
		b.f = nil
	}
	tmp := b.path + ".tmp"
	buf := make([]byte, 0, len(logMagic)+len(b.live)*(recordHeaderSize+256))
	buf = append(buf, logMagic...)
	for _, r := range b.live {
		buf = AppendRecord(buf, r)
	}
	f, err := b.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create temp log: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("storage: write temp log: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("storage: fsync temp log: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: close temp log: %w", err)
	}
	if err := b.fs.Rename(tmp, b.path); err != nil {
		return fmt.Errorf("storage: rename temp log: %w", err)
	}
	if err := b.fs.SyncDir(b.dir); err != nil {
		return err
	}
	// The rename + dir-fsync made the rewritten log durable under its
	// final name: whatever damage the old tail held is gone.
	b.logged = len(b.live)
	b.tornTail = false
	return b.openAppend()
}

// openAppend (re)opens the log for appending, initializing a fresh file with
// the magic header. Initialization ends with a directory fsync: a file
// fsync alone does not guarantee the new *directory entry* survives a
// crash, and losing the entry would silently discard every acked round in
// the file (a hole the crash-point explorer's strict post-crash model
// surfaces).
func (b *FileBackend) openAppend() error {
	f, size, err := b.fs.OpenAppend(b.path)
	if err != nil {
		return fmt.Errorf("storage: open stable log: %w", err)
	}
	if size == 0 {
		if _, err := f.Write([]byte(logMagic)); err != nil {
			f.Close()
			return fmt.Errorf("storage: write log header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("storage: fsync log header: %w", err)
		}
		if err := b.fs.SyncDir(b.dir); err != nil {
			f.Close()
			return err
		}
	}
	b.f = f
	return nil
}

// Close implements Backend.
func (b *FileBackend) Close() error {
	b.closed = true
	if b.f == nil {
		return nil
	}
	err := b.f.Close()
	b.f = nil
	return err
}

// Path returns the backing file's path.
func (b *FileBackend) Path() string { return b.path }
