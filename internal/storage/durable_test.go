package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openBacked(t *testing.T, path string) (*Stable, *FileBackend, RecoveredInfo) {
	t.Helper()
	fb, info, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	var s Stable
	if err := s.Load(info.Records); err != nil {
		t.Fatal(err)
	}
	s.SetBackend(fb)
	return &s, fb, info
}

func TestDurableCommitSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, info := openBacked(t, path)
	if len(info.Records) != 0 || info.TailDamaged {
		t.Fatalf("fresh log recovered %+v", info)
	}
	commitRound(t, s, 1, 10)
	commitRound(t, s, 2, 20)
	commitRound(t, s, 3, 30)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}

	s2, _, info2 := openBacked(t, path)
	if info2.TailDamaged {
		t.Fatal("clean log reported damage")
	}
	if got := s2.LatestRound(); got != 3 {
		t.Fatalf("reopened LatestRound = %d, want 3", got)
	}
	// Rounds evicted from the in-memory window may linger in the log
	// until compaction — deeper recovered history is harmless (recovery
	// restores the newest common round) — but the retained window must be
	// fully there.
	c, ok, err := s2.Round(2)
	if err != nil || !ok || c.State.Step != 20 {
		t.Fatalf("Round(2) = %+v, %v, %v", c, ok, err)
	}
	c, ok, err = s2.Latest()
	if err != nil || !ok || c.State.Step != 30 {
		t.Fatalf("Latest = %+v, %v, %v", c, ok, err)
	}
	// Committing continues from the recovered round.
	commitRound(t, s2, 4, 40)
	if got := s2.LatestRound(); got != 4 {
		t.Fatalf("LatestRound after post-recovery commit = %d", got)
	}
}

func TestDurableTornTailFallsBackToNewestIntactRound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, _ := openBacked(t, path)
	commitRound(t, s, 1, 10)
	commitRound(t, s, 2, 20)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop bytes off the last record mid-body.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, fb2, info := openBacked(t, path)
	if !info.TailDamaged || info.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", info)
	}
	if got := s2.LatestRound(); got != 1 {
		t.Fatalf("fell back to round %d, want newest intact round 1", got)
	}
	c, ok, err := s2.Latest()
	if err != nil || !ok || c.State.Step != 10 {
		t.Fatalf("Latest after fallback = %+v, %v, %v", c, ok, err)
	}
	if err := fb2.Close(); err != nil {
		t.Fatal(err)
	}
	// The damaged tail was compacted away: a third open sees a clean log.
	_, _, info3 := openBacked(t, path)
	if info3.TailDamaged {
		t.Fatal("damaged tail resurrected after compaction")
	}
}

func TestDurableBitFlipDropsCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, _ := openBacked(t, path)
	commitRound(t, s, 1, 10)
	commitRound(t, s, 2, 20)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // flip a bit inside the last record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _, info := openBacked(t, path)
	if !info.TailDamaged {
		t.Fatal("bit flip not detected")
	}
	if got := s2.LatestRound(); got != 1 {
		t.Fatalf("fell back to round %d, want 1", got)
	}
}

func TestDurableTruncateAboveIsDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, _ := openBacked(t, path)
	s.SetRetention(8)
	for r := uint64(1); r <= 5; r++ {
		commitRound(t, s, r, r*10)
	}
	if err := s.TruncateAbove(3); err != nil {
		t.Fatal(err)
	}
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _, _ := openBacked(t, path)
	if got := s2.LatestRound(); got != 3 {
		t.Fatalf("LatestRound after durable truncate = %d, want 3", got)
	}
	if _, ok, _ := s2.Round(4); ok {
		t.Fatal("truncated round 4 resurrected")
	}
	// The rolled-back round can be recommitted with fresh contents.
	commitRound(t, s2, 4, 44)
	c, ok, err := s2.Round(4)
	if err != nil || !ok || c.State.Step != 44 {
		t.Fatalf("recommitted round 4 = %+v, %v, %v", c, ok, err)
	}
}

func TestDurableCompactionBoundsLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, _, _ := openBacked(t, path)
	for r := uint64(1); r <= 40; r++ {
		commitRound(t, s, r, r)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, damaged := DecodeLog(data)
	if damaged {
		t.Fatal("compacted log reports damage")
	}
	// Retention is 2; compaction keeps the physical log within the
	// retained window plus the append slack.
	if len(recs) > 2+compactSlack {
		t.Fatalf("log holds %d records after compaction, want ≤ %d", len(recs), 2+compactSlack)
	}
}

func TestDurableCorruptMagicRecoversEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	if err := os.WriteFile(path, []byte("NOTALOG!junkjunkjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, info := openBacked(t, path)
	if !info.TailDamaged || len(info.Records) != 0 {
		t.Fatalf("corrupt magic recovered %+v", info)
	}
	if s.LatestRound() != 0 {
		t.Fatal("rounds recovered from a foreign file")
	}
	// The file was rewritten to a valid empty log; commits work.
	commitRound(t, s, 1, 1)
}

func TestDurableCommitAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, _ := openBacked(t, path)
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(ckpt(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err == nil {
		t.Fatal("commit through a closed backend must fail")
	}
	// The failed durable commit keeps the write in flight (so the caller
	// can retry or fail-stop) and leaves the committed history unchanged.
	if !s.InFlight() || s.LatestRound() != 0 {
		t.Fatalf("failed commit left inFlight=%v latest=%d", s.InFlight(), s.LatestRound())
	}
	// Abandoning is the caller's give-up path; memory ends unchanged.
	s.Abandon()
	if s.InFlight() || s.LatestRound() != 0 {
		t.Fatalf("abandon left inFlight=%v latest=%d", s.InFlight(), s.LatestRound())
	}
}

func TestDecodeLogDuplicateRoundStopsAtGarbage(t *testing.T) {
	buf := []byte(logMagic)
	buf = AppendRecord(buf, Record{Round: 1, Data: []byte("aaa")})
	buf = AppendRecord(buf, Record{Round: 2, Data: []byte("bbb")})
	buf = AppendRecord(buf, Record{Round: 2, Data: []byte("ccc")}) // replayed commit marker
	recs, _, damaged := DecodeLog(buf)
	if !damaged {
		t.Fatal("duplicate round not treated as damage")
	}
	if len(recs) != 2 || recs[1].Round != 2 || !bytes.Equal(recs[1].Data, []byte("bbb")) {
		t.Fatalf("recovered %+v, want rounds 1,2 with original contents", recs)
	}
}

func TestStableLoadRejectsNonIncreasingRounds(t *testing.T) {
	var s Stable
	err := s.Load([]Record{{Round: 2, Data: []byte("x")}, {Round: 2, Data: []byte("y")}})
	if err == nil {
		t.Fatal("Load accepted duplicate rounds")
	}
}
