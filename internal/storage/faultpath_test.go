package storage

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
)

// Tests for the durable log's failure paths: mid-log damage at decode time,
// and compaction failures (the temp-write/fsync/rename pipeline) that must
// leave the old log intact and the backend retryable.

func TestDecodeLogMidLogDamageKeepsIntactPrefix(t *testing.T) {
	log := []byte(logMagic)
	log = AppendRecord(log, Record{Round: 1, Data: []byte("round-one")})
	prefixLen := len(log)
	log = AppendRecord(log, Record{Round: 2, Data: []byte("round-two")})
	log = AppendRecord(log, Record{Round: 3, Data: []byte("round-three")})

	// Flip one bit inside round 2's body: rounds 2 AND 3 must be discarded
	// (the scan cannot trust anything past the first damaged record), while
	// round 1 — the intact prefix — survives exactly.
	damaged := append([]byte(nil), log...)
	damaged[prefixLen+recordHeaderSize+2] ^= 0x40

	recs, intact, dmg := DecodeLog(damaged)
	if !dmg {
		t.Fatal("mid-log bit flip not reported as damage")
	}
	if intact != prefixLen {
		t.Fatalf("intact prefix = %d bytes, want %d", intact, prefixLen)
	}
	if len(recs) != 1 || recs[0].Round != 1 || !bytes.Equal(recs[0].Data, []byte("round-one")) {
		t.Fatalf("recovered records = %+v, want exactly round 1", recs)
	}
}

func TestDecodeLogMidLogTruncationKeepsIntactPrefix(t *testing.T) {
	log := []byte(logMagic)
	log = AppendRecord(log, Record{Round: 1, Data: []byte("round-one")})
	prefixLen := len(log)
	log = AppendRecord(log, Record{Round: 2, Data: []byte("round-two")})

	// Cut the file mid-way through round 2's header.
	cut := log[:prefixLen+recordHeaderSize/2]
	recs, intact, dmg := DecodeLog(cut)
	if !dmg || intact != prefixLen || len(recs) != 1 || recs[0].Round != 1 {
		t.Fatalf("DecodeLog(torn header) = %d recs, intact %d, damaged %v", len(recs), intact, dmg)
	}
}

// scriptedVFS returns a FaultVFS over the OS filesystem whose verdicts are
// driven by the test: fail returns true for the operations to reject.
func scriptedVFS(fail func(op DiskOp, path string) bool) *FaultVFS {
	return &FaultVFS{
		Inner: OSVFS{},
		Verdict: func(op DiskOp, path string, n int) DiskVerdict {
			d := CleanVerdict()
			if fail(op, path) {
				d.Err = true
			}
			return d
		},
	}
}

// openScripted opens a backed Stable through a scripted FaultVFS. The fail
// pointer starts nil (clean) so setup IO always succeeds; tests arm it once
// the log holds history.
func openScripted(t *testing.T, path string) (*Stable, *FileBackend, *func(op DiskOp, p string) bool) {
	t.Helper()
	var fail func(op DiskOp, p string) bool
	fs := scriptedVFS(func(op DiskOp, p string) bool {
		if fail == nil {
			return false
		}
		return fail(op, p)
	})
	fb, info, err := OpenFileVFS(path, fs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	var s Stable
	if err := s.Load(info.Records); err != nil {
		t.Fatal(err)
	}
	s.SetBackend(fb)
	return &s, fb, &fail
}

func TestCompactionRenameFailureLeavesOldLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, fail := openScripted(t, path)
	commitRound(t, s, 1, 10)
	commitRound(t, s, 2, 20)
	commitRound(t, s, 3, 30)

	// Durable truncation compacts; the rename dies. The old log under the
	// final name must be byte-for-byte what the commits left there.
	*fail = func(op DiskOp, p string) bool { return op == OpRename }
	err := fb.TruncateAbove(2)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("TruncateAbove with failing rename = %v, want injected fault", err)
	}

	_, _, info := openBacked(t, path)
	if info.TailDamaged {
		t.Fatal("old log reported damage after failed rename")
	}
	if got := len(info.Records); got != 3 {
		t.Fatalf("old log holds %d rounds after failed rename, want all 3", got)
	}

	// The backend stays retryable: the next attempt with a healthy disk
	// completes the truncation durably.
	*fail = nil
	if err := fb.TruncateAbove(2); err != nil {
		t.Fatalf("retried TruncateAbove: %v", err)
	}
	// The rewrite reflects the retained window (round 1 was evicted when
	// round 3 committed); what matters is that round 3 is durably gone and
	// the truncation target survives.
	_, _, info = openBacked(t, path)
	if n := len(info.Records); n == 0 || info.Records[n-1].Round != 2 {
		t.Fatalf("log after retried truncate = %+v, want newest round 2", info.Records)
	}
}

func TestCompactionTempFsyncFailureLeavesOldLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, fail := openScripted(t, path)
	commitRound(t, s, 1, 10)
	commitRound(t, s, 2, 20)

	// The temp file's fsync dies before the rename: nothing may touch the
	// log under its final name.
	*fail = func(op DiskOp, p string) bool { return op == OpSync && p == path+".tmp" }
	if err := fb.TruncateAbove(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("TruncateAbove with failing temp fsync = %v, want injected fault", err)
	}
	_, _, info := openBacked(t, path)
	if info.TailDamaged || len(info.Records) != 2 {
		t.Fatalf("old log after failed temp fsync = %+v", info)
	}
}

func TestCommitAfterFailedCompactionRepairsByRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p2.stable")
	s, fb, fail := openScripted(t, path)
	commitRound(t, s, 1, 10)
	commitRound(t, s, 2, 20)

	// A failed truncation leaves the backend without an append handle; the
	// next Commit must recover by rewriting the whole log — and the rewrite
	// must reflect the truncation the in-memory window already performed.
	*fail = func(op DiskOp, p string) bool { return op == OpCreate }
	if err := fb.TruncateAbove(1); !errors.Is(err, ErrInjected) {
		t.Fatalf("TruncateAbove with failing create = %v, want injected fault", err)
	}
	*fail = nil
	if err := fb.Commit(2, []byte("retaken-2"), 1); err != nil {
		t.Fatalf("commit after failed compaction: %v", err)
	}
	_, _, info := openBacked(t, path)
	if len(info.Records) != 2 || info.Records[1].Round != 2 ||
		!bytes.Equal(info.Records[1].Data, []byte("retaken-2")) {
		t.Fatalf("log after repair commit = %+v, want rounds 1 and retaken 2", info.Records)
	}
}
