package storage

import (
	"errors"
	"fmt"
	"sync"

	"github.com/synergy-ft/synergy/internal/obs"
)

// ErrInjected is the base error injected disk faults surface — the VFS's
// EIO. Callers retry or fail-stop on it exactly as they would on a real
// device error.
var ErrInjected = errors.New("storage: injected disk fault")

// DiskOp classifies one VFS operation for fault injection.
type DiskOp int

// Disk operation classes, in the order FileBackend performs them.
const (
	// OpRead is a whole-file read (recovery's log scan).
	OpRead DiskOp = iota
	// OpCreate opens a file truncated (the compaction temp file).
	OpCreate
	// OpOpenAppend opens the log for appending.
	OpOpenAppend
	// OpWrite is a data write through an open handle.
	OpWrite
	// OpSync is a file fsync.
	OpSync
	// OpRename is the atomic temp-over-log rename.
	OpRename
	// OpSyncDir is a directory fsync.
	OpSyncDir
)

// String implements fmt.Stringer.
func (op DiskOp) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpCreate:
		return "create"
	case OpOpenAppend:
		return "open-append"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpSyncDir:
		return "sync-dir"
	default:
		return fmt.Sprintf("disk-op(%d)", int(op))
	}
}

// DiskVerdict is a fault decision for one IO operation. The zero value (with
// TornN and FlipByte at their -1 sentinels via CleanVerdict) injects nothing.
type DiskVerdict struct {
	// Err fails the operation with ErrInjected.
	Err bool
	// TornN, when ≥ 0 on a failing write, persists that many leading bytes
	// before the error — a torn write. -1 fails cleanly (nothing lands).
	TornN int
	// FlipByte, when ≥ 0 on a read, is the byte index to XOR with FlipMask
	// in the returned data — bitrot of already-durable bytes, surfacing at
	// recovery. -1 leaves the data intact.
	FlipByte int
	// FlipMask is the bit pattern to flip (never zero when FlipByte ≥ 0).
	FlipMask byte
}

// CleanVerdict is the no-fault decision.
func CleanVerdict() DiskVerdict { return DiskVerdict{TornN: -1, FlipByte: -1} }

// DiskFaultStats counts faults a FaultVFS actually applied, by kind.
type DiskFaultStats struct {
	// WriteErrs counts clean write/metadata failures (nothing persisted).
	WriteErrs uint64
	// TornWrites counts writes that persisted a partial prefix then failed.
	TornWrites uint64
	// SyncErrs counts failed file and directory fsyncs.
	SyncErrs uint64
	// ReadCorrupts counts reads returned with a flipped bit.
	ReadCorrupts uint64
}

// DiskObs bundles the injected-disk-fault counters, one series per kind on
// the synergy_storage_injected_faults_total family. The zero value disables
// them.
type DiskObs struct {
	// WriteErrs, TornWrites, SyncErrs, ReadCorrupts mirror DiskFaultStats.
	WriteErrs, TornWrites, SyncErrs, ReadCorrupts *obs.Counter
}

// NewDiskObs registers the injected-disk-fault counters on r with the given
// fixed labels (the live middleware passes proc="P2" etc.). A nil registry
// yields the zero (disabled) bundle.
func NewDiskObs(r *obs.Registry, labels ...obs.Label) DiskObs {
	fault := func(kind string) *obs.Counter {
		ls := append([]obs.Label{obs.L("kind", kind)}, labels...)
		return r.Counter("synergy_storage_injected_faults_total",
			"Disk faults injected into the stable-storage VFS, by kind.", ls...)
	}
	return DiskObs{
		WriteErrs:    fault("disk-write-err"),
		TornWrites:   fault("disk-torn"),
		SyncErrs:     fault("disk-sync-err"),
		ReadCorrupts: fault("disk-corrupt"),
	}
}

// FaultVFS wraps an inner VFS and consults a verdict function before every
// operation, injecting EIO, short (torn) writes and read-time bit flips.
// The verdict function owns all randomness — a seeded chaos injector or a
// scripted test sequence — so the fault schedule is deterministic and the
// VFS itself is pure mechanism. Applied faults are counted in Stats and on
// the Obs bundle; both tally exactly the verdicts that injected something,
// so a cross-check against the verdict source must agree.
type FaultVFS struct {
	// Inner is the wrapped VFS (the OS for live chaos runs, a MemVFS for
	// hermetic tests).
	Inner VFS
	// Verdict decides each operation's fate. n is the byte count at stake
	// (write length, read result length; 0 for metadata ops). A nil
	// Verdict injects nothing.
	Verdict func(op DiskOp, path string, n int) DiskVerdict
	// Obs holds the injected-fault counters; the zero value disables them.
	Obs DiskObs

	mu    sync.Mutex
	stats DiskFaultStats
}

var _ VFS = (*FaultVFS)(nil)

// Stats returns a snapshot of the applied-fault counters.
func (v *FaultVFS) Stats() DiskFaultStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// verdict consults the decision function, defaulting to clean.
func (v *FaultVFS) verdict(op DiskOp, path string, n int) DiskVerdict {
	if v.Verdict == nil {
		return CleanVerdict()
	}
	return v.Verdict(op, path, n)
}

func (v *FaultVFS) countWriteErr() {
	v.mu.Lock()
	v.stats.WriteErrs++
	v.mu.Unlock()
	v.Obs.WriteErrs.Inc()
}

func (v *FaultVFS) countSyncErr() {
	v.mu.Lock()
	v.stats.SyncErrs++
	v.mu.Unlock()
	v.Obs.SyncErrs.Inc()
}

// ReadFile implements VFS. A read verdict can fail the read outright or flip
// one bit of the returned copy — bitrot of already-durable bytes that only
// recovery's CRC check can catch.
func (v *FaultVFS) ReadFile(path string) ([]byte, error) {
	data, err := v.Inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	d := v.verdict(OpRead, path, len(data))
	if d.Err {
		v.countWriteErr()
		return nil, fmt.Errorf("%w: read %s", ErrInjected, path)
	}
	if d.FlipByte >= 0 && d.FlipByte < len(data) && d.FlipMask != 0 {
		flipped := append([]byte(nil), data...)
		flipped[d.FlipByte] ^= d.FlipMask
		v.mu.Lock()
		v.stats.ReadCorrupts++
		v.mu.Unlock()
		v.Obs.ReadCorrupts.Inc()
		return flipped, nil
	}
	return data, nil
}

// Create implements VFS.
func (v *FaultVFS) Create(path string) (File, error) {
	if d := v.verdict(OpCreate, path, 0); d.Err {
		v.countWriteErr()
		return nil, fmt.Errorf("%w: create %s", ErrInjected, path)
	}
	f, err := v.Inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, path: path, vfs: v}, nil
}

// OpenAppend implements VFS.
func (v *FaultVFS) OpenAppend(path string) (File, int64, error) {
	if d := v.verdict(OpOpenAppend, path, 0); d.Err {
		v.countWriteErr()
		return nil, 0, fmt.Errorf("%w: open %s", ErrInjected, path)
	}
	f, size, err := v.Inner.OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	return &faultFile{f: f, path: path, vfs: v}, size, nil
}

// Rename implements VFS.
func (v *FaultVFS) Rename(oldPath, newPath string) error {
	if d := v.verdict(OpRename, newPath, 0); d.Err {
		v.countWriteErr()
		return fmt.Errorf("%w: rename %s", ErrInjected, newPath)
	}
	return v.Inner.Rename(oldPath, newPath)
}

// SyncDir implements VFS.
func (v *FaultVFS) SyncDir(dir string) error {
	if d := v.verdict(OpSyncDir, dir, 0); d.Err {
		v.countSyncErr()
		return fmt.Errorf("%w: fsync dir %s", ErrInjected, dir)
	}
	return v.Inner.SyncDir(dir)
}

// faultFile wraps an open handle, injecting write and fsync faults.
type faultFile struct {
	f    File
	path string
	vfs  *FaultVFS
}

// Write implements File. A failing verdict either persists nothing (clean
// EIO) or lands a partial prefix first (torn write) — the device wrote some
// sectors and died.
func (ff *faultFile) Write(p []byte) (int, error) {
	d := ff.vfs.verdict(OpWrite, ff.path, len(p))
	if !d.Err {
		return ff.f.Write(p)
	}
	if d.TornN >= 0 && d.TornN < len(p) {
		if d.TornN > 0 {
			if _, err := ff.f.Write(p[:d.TornN]); err != nil {
				return 0, err
			}
		}
		ff.vfs.mu.Lock()
		ff.vfs.stats.TornWrites++
		ff.vfs.mu.Unlock()
		ff.vfs.Obs.TornWrites.Inc()
		return d.TornN, fmt.Errorf("%w: torn write %s (%d of %d bytes)", ErrInjected, ff.path, d.TornN, len(p))
	}
	ff.vfs.countWriteErr()
	return 0, fmt.Errorf("%w: write %s", ErrInjected, ff.path)
}

// Sync implements File. An injected fsync failure leaves the pending bytes
// in limbo: they may or may not have reached the platter, exactly the
// ambiguity FileBackend's torn-tail repair handles.
func (ff *faultFile) Sync() error {
	if d := ff.vfs.verdict(OpSync, ff.path, 0); d.Err {
		ff.vfs.countSyncErr()
		return fmt.Errorf("%w: fsync %s", ErrInjected, ff.path)
	}
	return ff.f.Sync()
}

// Close implements File (never injected: close errors are not part of the
// durability fault model).
func (ff *faultFile) Close() error { return ff.f.Close() }
