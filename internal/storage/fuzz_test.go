package storage

import (
	"bytes"
	"testing"
)

// FuzzStableLog feeds arbitrary bytes to the durable stable-log parser.
// Whatever the input — truncations, bit flips, duplicate commit markers,
// hostile length fields — DecodeLog must never panic, must return a
// round-increasing record sequence whose re-encoding reproduces exactly the
// intact prefix it claims, and must flag everything else as a damaged tail.
func FuzzStableLog(f *testing.F) {
	// A clean two-round log.
	clean := []byte(logMagic)
	clean = AppendRecord(clean, Record{Round: 1, Data: []byte("round-one")})
	clean = AppendRecord(clean, Record{Round: 2, Data: []byte("round-two")})
	f.Add(clean)
	// A torn tail (mid-record truncation).
	f.Add(clean[:len(clean)-4])
	// A bit-flipped body.
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-2] ^= 0x10
	f.Add(flipped)
	// Mid-log damage: a bit flip inside the FIRST record of a longer log,
	// so the intact-prefix fallback has to discard intact-looking records
	// behind the damage.
	three := append([]byte(nil), clean...)
	three = AppendRecord(three, Record{Round: 3, Data: []byte("round-three")})
	midFlip := append([]byte(nil), three...)
	midFlip[len(logMagic)+recordHeaderSize+1] ^= 0x04
	f.Add(midFlip)
	// A duplicate commit marker (replayed round).
	dup := append([]byte(nil), clean...)
	dup = AppendRecord(dup, Record{Round: 2, Data: []byte("replayed")})
	f.Add(dup)
	// Empty, magic-only, and foreign files.
	f.Add([]byte{})
	f.Add([]byte(logMagic))
	f.Add([]byte("NOTALOG!"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, intact, damaged := DecodeLog(data)
		if intact < 0 || intact > len(data) {
			t.Fatalf("intact prefix %d outside [0, %d]", intact, len(data))
		}
		if damaged && intact == len(data) && len(data) >= len(logMagic) && string(data[:len(logMagic)]) == logMagic {
			t.Fatal("whole input intact yet flagged damaged")
		}
		if !damaged && len(data) > 0 && intact != len(data) {
			t.Fatalf("undamaged log parsed only %d of %d bytes", intact, len(data))
		}
		var last uint64
		for i, r := range recs {
			if r.Round <= last {
				t.Fatalf("record %d round %d not above %d", i, r.Round, last)
			}
			last = r.Round
		}
		// The intact prefix must re-encode byte-identically: recovery's
		// newest intact round really is what the disk holds.
		if len(recs) > 0 || (!damaged && len(data) > 0) {
			re := []byte(logMagic)
			for _, r := range recs {
				re = AppendRecord(re, r)
			}
			if !bytes.Equal(re, data[:intact]) {
				t.Fatalf("re-encoded intact prefix differs:\n got %x\nwant %x", re, data[:intact])
			}
		}
	})
}
