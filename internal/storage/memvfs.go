package storage

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every MemVFS operation past the configured crash
// point: the simulated machine is gone, and nothing else lands on its disk.
var ErrCrashed = errors.New("storage: simulated crash")

// MemVFS is a fully in-memory VFS that models durability precisely enough to
// enumerate post-crash disk states. It distinguishes, per file, the bytes an
// fsync has made durable from pending appended chunks, and, per directory,
// the entries a directory fsync has persisted from pending creates and
// renames. A crash point (SetCrashAfter) fails every operation past the
// N-th; CrashImages then enumerates the disk contents a machine could
// observe after rebooting at that instant:
//
//   - the suffix written after the last file fsync may be wholly lost,
//     wholly present, torn mid-write, or reordered (later sectors persisted
//     while earlier ones read as zeros);
//   - renames are atomic (old or new entry, never a mix) but un-persisted
//     until the directory fsync, so pending directory ops apply as an
//     in-order prefix.
//
// All files are modeled as living in one directory: SyncDir persists every
// pending entry regardless of the dir argument, which matches FileBackend's
// single-directory layout.
type MemVFS struct {
	mu         sync.Mutex
	cur        map[string]*memFile // live directory view
	dur        map[string]*memFile // entries the directory durably references
	dirOps     []dirOp             // entry ops since the last SyncDir
	ops        int
	crashAfter int // ops beyond this index fail; < 0 disables
}

// memFile is one inode: durable bytes plus pending (un-fsynced) appends.
type memFile struct {
	durable []byte
	pending [][]byte
}

// size is the live view's length.
func (f *memFile) size() int64 {
	n := int64(len(f.durable))
	for _, c := range f.pending {
		n += int64(len(c))
	}
	return n
}

// view concatenates durable and pending bytes into a fresh buffer.
func (f *memFile) view() []byte {
	out := make([]byte, 0, f.size())
	out = append(out, f.durable...)
	for _, c := range f.pending {
		out = append(out, c...)
	}
	return out
}

type dirOpKind int

const (
	dirCreate dirOpKind = iota
	dirRename
)

// dirOp is one un-persisted directory mutation.
type dirOp struct {
	kind dirOpKind
	path string   // entry being placed (create target, rename destination)
	from string   // rename source
	file *memFile // inode the entry points at
}

// NewMemVFS returns an empty in-memory disk with no crash point set.
func NewMemVFS() *MemVFS {
	return &MemVFS{
		cur:        map[string]*memFile{},
		dur:        map[string]*memFile{},
		crashAfter: -1,
	}
}

// DiskImage is one possible post-crash disk state: path → file contents.
type DiskImage struct {
	// Label describes which pending effects this image persisted.
	Label string
	// Files maps path to contents.
	Files map[string][]byte
}

// FromImage builds a clean MemVFS whose durable state is exactly the image —
// the disk a recovering process mounts.
func FromImage(img DiskImage) *MemVFS {
	m := NewMemVFS()
	paths := make([]string, 0, len(img.Files))
	for path := range img.Files {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		f := &memFile{durable: append([]byte(nil), img.Files[path]...)}
		m.cur[path] = f
		m.dur[path] = f
	}
	return m
}

var _ VFS = (*MemVFS)(nil)

// SetCrashAfter arranges for every operation after the k-th to fail with
// ErrCrashed. k = 0 crashes before any further IO; a negative k disables the
// crash point.
func (m *MemVFS) SetCrashAfter(k int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAfter = k
}

// Ops returns how many IO operations have been attempted (including any that
// failed at the crash point).
func (m *MemVFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// step counts one IO operation and reports whether the crash point has been
// passed. Callers must hold m.mu and must not mutate state on error.
func (m *MemVFS) step() error {
	m.ops++
	if m.crashAfter >= 0 && m.ops > m.crashAfter {
		return ErrCrashed
	}
	return nil
}

// ReadFile implements VFS.
func (m *MemVFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	f, ok := m.cur[path]
	if !ok {
		return nil, fmt.Errorf("storage: %s: %w", path, os.ErrNotExist)
	}
	return f.view(), nil
}

// Create implements VFS. The new entry (and the truncation it implies) is
// not durable until SyncDir; the previously durable inode, if any, remains
// what a crash would expose.
func (m *MemVFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, err
	}
	f := &memFile{}
	m.cur[path] = f
	m.dirOps = append(m.dirOps, dirOp{kind: dirCreate, path: path, file: f})
	return &memHandle{m: m, f: f, path: path}, nil
}

// OpenAppend implements VFS. Opening an absent path creates it, pending a
// directory fsync like Create.
func (m *MemVFS) OpenAppend(path string) (File, int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return nil, 0, err
	}
	f, ok := m.cur[path]
	if !ok {
		f = &memFile{}
		m.cur[path] = f
		m.dirOps = append(m.dirOps, dirOp{kind: dirCreate, path: path, file: f})
	}
	return &memHandle{m: m, f: f, path: path}, f.size(), nil
}

// Rename implements VFS. The swap is atomic — post-crash directories show
// the old entry or the new one, never a mix — but un-persisted until the
// next SyncDir.
func (m *MemVFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	f, ok := m.cur[oldPath]
	if !ok {
		return fmt.Errorf("storage: rename %s: %w", oldPath, os.ErrNotExist)
	}
	m.cur[newPath] = f
	delete(m.cur, oldPath)
	m.dirOps = append(m.dirOps, dirOp{kind: dirRename, path: newPath, from: oldPath, file: f})
	return nil
}

// SyncDir implements VFS: every pending entry operation becomes durable.
// Replaying the op log (rather than copying the live map) keeps the durable
// view equal to cur without ranging over a map.
func (m *MemVFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.step(); err != nil {
		return err
	}
	for _, op := range m.dirOps {
		switch op.kind {
		case dirCreate:
			m.dur[op.path] = op.file
		case dirRename:
			m.dur[op.path] = op.file
			delete(m.dur, op.from)
		}
	}
	m.dirOps = nil
	return nil
}

// memHandle is an open append/write handle onto a memFile inode. Writes keep
// targeting the inode even if the entry is later renamed or replaced, like a
// POSIX file descriptor.
type memHandle struct {
	m    *MemVFS
	f    *memFile
	path string
}

// Write implements File: one pending chunk per call.
func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.step(); err != nil {
		return 0, err
	}
	h.f.pending = append(h.f.pending, append([]byte(nil), p...))
	return len(p), nil
}

// Sync implements File: pending chunks become durable.
func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.step(); err != nil {
		return err
	}
	for _, c := range h.f.pending {
		h.f.durable = append(h.f.durable, c...)
	}
	h.f.pending = nil
	return nil
}

// Close implements File. Closing is not a durability event: it is neither
// counted as an IO op nor a crash point, and flushes nothing.
func (h *memHandle) Close() error { return nil }

// fileVariant is one possible post-crash content for a file.
type fileVariant struct {
	label string
	data  []byte
}

// crashVariants enumerates the contents a file's inode could hold after a
// crash: the durable prefix alone (pending suffix lost), everything
// (pending fully persisted), torn mid-chunk, and reordered (the newest
// chunk's tail persisted while earlier pending bytes read as zeros).
func (f *memFile) crashVariants() []fileVariant {
	if len(f.pending) == 0 {
		return []fileVariant{{label: "durable", data: append([]byte(nil), f.durable...)}}
	}
	vars := []fileVariant{
		{label: "lost", data: append([]byte(nil), f.durable...)},
		{label: "full", data: f.view()},
	}
	for i, c := range f.pending {
		if len(c) < 2 {
			continue
		}
		buf := append([]byte(nil), f.durable...)
		for _, prev := range f.pending[:i] {
			buf = append(buf, prev...)
		}
		buf = append(buf, c[:len(c)/2]...)
		vars = append(vars, fileVariant{label: fmt.Sprintf("torn@%d", i), data: buf})
	}
	last := f.pending[len(f.pending)-1]
	if len(f.pending) >= 2 || len(last) >= 2 {
		buf := append([]byte(nil), f.durable...)
		for _, prev := range f.pending[:len(f.pending)-1] {
			buf = append(buf, make([]byte, len(prev))...)
		}
		half := len(last) / 2
		buf = append(buf, make([]byte, half)...)
		buf = append(buf, last[half:]...)
		vars = append(vars, fileVariant{label: "reordered", data: buf})
	}
	return vars
}

// CrashImages enumerates the distinct disk states a machine could observe
// after crashing at the current instant: every in-order prefix of the
// pending directory operations, crossed with every per-file content variant
// for the files each directory state references. The slice is deterministic
// (sorted paths, fixed variant order) and deduplicated by content.
func (m *MemVFS) CrashImages() []DiskImage {
	m.mu.Lock()
	defer m.mu.Unlock()

	var images []DiskImage
	seen := map[string]bool{}
	for p := 0; p <= len(m.dirOps); p++ {
		view := make(map[string]*memFile, len(m.dur))
		for path, f := range m.dur {
			view[path] = f
		}
		for _, op := range m.dirOps[:p] {
			switch op.kind {
			case dirCreate:
				view[op.path] = op.file
			case dirRename:
				view[op.path] = op.file
				delete(view, op.from)
			}
		}
		paths := make([]string, 0, len(view))
		for path := range view {
			paths = append(paths, path)
		}
		sort.Strings(paths)

		variants := make([][]fileVariant, len(paths))
		for i, path := range paths {
			variants[i] = view[path].crashVariants()
		}
		choice := make([]int, len(paths))
		for {
			files := make(map[string][]byte, len(paths))
			var labels []string
			for i, path := range paths {
				v := variants[i][choice[i]]
				files[path] = v.data
				if v.label != "durable" {
					labels = append(labels, path+"="+v.label)
				}
			}
			key := imageKey(files)
			if !seen[key] {
				seen[key] = true
				label := fmt.Sprintf("dirops=%d/%d", p, len(m.dirOps))
				if len(labels) > 0 {
					label += " " + strings.Join(labels, " ")
				}
				images = append(images, DiskImage{Label: label, Files: files})
			}
			// Advance the mixed-radix choice vector.
			i := 0
			for ; i < len(choice); i++ {
				choice[i]++
				if choice[i] < len(variants[i]) {
					break
				}
				choice[i] = 0
			}
			if i == len(choice) {
				break
			}
		}
	}
	return images
}

// imageKey canonicalizes an image's contents for deduplication.
func imageKey(files map[string][]byte) string {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s\x00%d\x00", p, len(files[p]))
		b.Write(files[p])
		b.WriteByte(0)
	}
	return b.String()
}
