package storage

import "github.com/synergy-ft/synergy/internal/obs"

// FileObs bundles the durable backend's metrics. The zero value (all-nil
// metrics) is the disabled state; latency timers go through the histogram's
// StartTimer/ObserveSince indirection, so this package never reads the clock
// itself and a disabled bundle never touches it at all.
type FileObs struct {
	// CommitLatency is the full Commit duration (append + fsync +
	// occasional compaction), in seconds.
	CommitLatency *obs.Histogram
	// FsyncLatency is the data-fsync portion of a commit, in seconds.
	FsyncLatency *obs.Histogram
	// Compactions counts log rewrites (slack-triggered, truncations and
	// damaged-tail discards).
	Compactions *obs.Counter
}

// NewFileObs registers the durable-backend metrics on r with the given fixed
// labels. A nil registry yields the zero (disabled) bundle.
func NewFileObs(r *obs.Registry, labels ...obs.Label) FileObs {
	bounds := obs.ExpBuckets(0.0001, 2, 12) // 100µs .. ~0.2s
	return FileObs{
		CommitLatency: r.Histogram("synergy_storage_commit_seconds",
			"Durable stable-checkpoint commit latency (append + fsync).", bounds, labels...),
		FsyncLatency: r.Histogram("synergy_storage_fsync_seconds",
			"Data-fsync latency within a stable commit.", bounds, labels...),
		Compactions: r.Counter("synergy_storage_compactions_total",
			"Stable-log compactions (rewrite + atomic rename).", labels...),
	}
}
