package storage

import "testing"

// Steady-state stable writes must recycle encode buffers: once the retention
// window is full, every commit evicts a round whose buffer backs the next
// Begin, so the periodic checkpoint traffic stops allocating. (Map iteration
// inside checkpoint encoding still allocates a small sort key slice; this
// test pins the buffer itself.)
func TestStableWriteRecyclesBuffers(t *testing.T) {
	var s Stable
	round := uint64(0)
	commit := func() {
		round++
		if err := s.Begin(ckpt(round * 10)); err != nil {
			t.Fatal(err)
		}
		if err := s.Commit(round); err != nil {
			t.Fatal(err)
		}
	}
	// Fill the retention window plus one eviction so recycling is active.
	for i := 0; i < 3; i++ {
		commit()
	}
	if s.scratch == nil {
		t.Fatal("no buffer was donated back by the evicted round")
	}
	before := &s.scratch[:1][0]
	commit()
	// The newly committed round must be backed by the donated buffer, not a
	// fresh allocation (same first-element address).
	latest := s.committed[len(s.committed)-1].data
	if &latest[0] != before {
		t.Fatal("commit did not reuse the recycled encode buffer")
	}
	// And the history still decodes correctly after recycling.
	c, ok, err := s.Latest()
	if err != nil || !ok || c.State.Step != round*10 {
		t.Fatalf("Latest after recycling = %+v, %v, %v", c, ok, err)
	}
	c2, ok, err := s.Round(round - 1)
	if err != nil || !ok || c2.State.Step != (round-1)*10 {
		t.Fatalf("previous round corrupted by recycling = %+v, %v, %v", c2, ok, err)
	}
}

// Replacing an in-flight write re-encodes into the same pending buffer.
func TestReplaceReusesPendingBuffer(t *testing.T) {
	var s Stable
	if err := s.Begin(ckpt(10)); err != nil {
		t.Fatal(err)
	}
	before := &s.pending[:1][0]
	for i := uint64(0); i < 8; i++ {
		if err := s.Replace(ckpt(20 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if &s.pending[:1][0] != before {
		t.Fatal("Replace allocated a new buffer for same-size contents")
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	c, ok, err := s.Latest()
	if err != nil || !ok || c.State.Step != 27 {
		t.Fatalf("Latest = %+v, %v, %v", c, ok, err)
	}
}
