package storage

import (
	"errors"
	"testing"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
)

func commitRound(t *testing.T, s *Stable, round uint64, step uint64) {
	t.Helper()
	if err := s.Begin(ckpt(step)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(round); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryRetainsTwoRounds(t *testing.T) {
	var s Stable
	commitRound(t, &s, 1, 10)
	commitRound(t, &s, 2, 20)
	commitRound(t, &s, 3, 30)

	if got := s.LatestRound(); got != 3 {
		t.Fatalf("LatestRound = %d", got)
	}
	if _, ok, _ := s.Round(1); ok {
		t.Fatal("round 1 should have been evicted (history depth 2)")
	}
	for round, step := range map[uint64]uint64{2: 20, 3: 30} {
		c, ok, err := s.Round(round)
		if err != nil || !ok || c.State.Step != step {
			t.Fatalf("Round(%d) = %+v, %v, %v", round, c, ok, err)
		}
	}
}

func TestCommitRoundsMustIncrease(t *testing.T) {
	var s Stable
	commitRound(t, &s, 5, 1)
	if err := s.Begin(ckpt(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(5); err == nil {
		t.Fatal("repeating a round must fail")
	}
	s.Abandon()
	if err := s.Begin(ckpt(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(4); err == nil {
		t.Fatal("regressing a round must fail")
	}
}

func TestTruncateAbove(t *testing.T) {
	var s Stable
	commitRound(t, &s, 1, 10)
	commitRound(t, &s, 2, 20)
	if err := s.TruncateAbove(1); err != nil {
		t.Fatal(err)
	}
	if got := s.LatestRound(); got != 1 {
		t.Fatalf("LatestRound after truncate = %d", got)
	}
	if _, ok, _ := s.Round(2); ok {
		t.Fatal("round 2 should be gone")
	}
	// After truncation, round 2 can be committed again.
	commitRound(t, &s, 2, 21)
	c, ok, err := s.Round(2)
	if err != nil || !ok || c.State.Step != 21 {
		t.Fatalf("recommitted round 2 = %+v, %v, %v", c, ok, err)
	}
}

func TestTruncateAboveZeroClearsEverything(t *testing.T) {
	var s Stable
	commitRound(t, &s, 1, 10)
	if err := s.TruncateAbove(0); err != nil {
		t.Fatal(err)
	}
	if s.LatestRound() != 0 {
		t.Fatal("all rounds should be gone")
	}
	if _, ok, _ := s.Latest(); ok {
		t.Fatal("Latest should report nothing")
	}
}

func TestBytesAccountsRetainedRounds(t *testing.T) {
	var s Stable
	if s.Bytes() != 0 {
		t.Fatal("empty store should occupy no bytes")
	}
	commitRound(t, &s, 1, 10)
	one := s.Bytes()
	commitRound(t, &s, 2, 20)
	if s.Bytes() <= one {
		t.Fatal("second round should add bytes")
	}
}

func TestLatestDecodesCorruptionError(t *testing.T) {
	var s Stable
	if err := s.Begin(checkpoint.New(checkpoint.Stable, msg.P2)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the pending bytes before commit by replacing with garbage
	// via Replace on a checkpoint, then smash the committed copy.
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	s.committed[0].data[0] = 0xff // simulated media corruption
	if _, _, err := s.Latest(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Latest over corrupt media: err = %v", err)
	}
	if _, _, err := s.Round(1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Round over corrupt media: err = %v", err)
	}
}

func TestRoundMissing(t *testing.T) {
	var s Stable
	if _, ok, err := s.Round(7); ok || err != nil {
		t.Fatalf("missing round: ok=%v err=%v", ok, err)
	}
}
