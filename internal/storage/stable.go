package storage

import (
	"errors"
	"fmt"

	"github.com/synergy-ft/synergy/internal/checkpoint"
)

// Stable storage errors.
var (
	// ErrWriteInProgress is returned by Begin when a previous write has not
	// been committed; the TB protocol never overlaps checkpoint writes.
	ErrWriteInProgress = errors.New("storage: stable write already in progress")
	// ErrNoWrite is returned by Replace/Commit without a pending write.
	ErrNoWrite = errors.New("storage: no stable write in progress")
	// ErrCorrupt is returned when the stored bytes fail to decode.
	ErrCorrupt = errors.New("storage: stored checkpoint is corrupt")
)

// Stable is a process's stable-storage checkpoint area. Contents are held in
// encoded form — exactly the bytes a disk would hold — and survive node
// crashes. Writes follow the adapted TB protocol's write_disk semantics: a
// write begins with initial contents, may be replaced while still in progress
// (when the dirty bit flips during the blocking period), and becomes durable
// only at commit.
//
// The two most recent committed rounds are retained (time-based protocols
// keep the previous checkpoint until every process has established the new
// one): recovery restores the highest round every live process has
// committed, which may be one behind a process's own latest.
type Stable struct {
	committed []committedRound
	pending   []byte
	inFlight  bool
	retention int

	// backend, when set, makes commits durable: every Commit is written
	// through before it is acknowledged, and TruncateAbove rewrites the
	// backing log. Nil (the default) keeps the area purely in-memory —
	// the simulator's configuration.
	backend Backend

	// scratch is the recycled encode buffer behind pending. Commit hands
	// the buffer over to the committed history, and the round evicted by
	// the retention window donates its buffer back — so in steady state
	// the periodic stable writes cycle through a fixed set of buffers
	// instead of allocating one per Begin/Replace.
	scratch []byte

	commits  uint64
	replaces uint64
}

type committedRound struct {
	round uint64
	data  []byte
}

// defaultHistoryDepth is how many committed rounds are retained unless
// SetRetention raises it (longer repair windows need deeper history: the
// recovery round is the highest one every live process has committed, and a
// node can be down for several intervals).
const defaultHistoryDepth = 2

// SetRetention raises the number of committed rounds retained (values below
// the default are ignored).
func (s *Stable) SetRetention(rounds int) {
	if rounds > s.retention {
		s.retention = rounds
	}
}

func (s *Stable) historyDepth() int {
	if s.retention > defaultHistoryDepth {
		return s.retention
	}
	return defaultHistoryDepth
}

// Begin starts a stable write with the given initial contents.
func (s *Stable) Begin(c *checkpoint.Checkpoint) error {
	if s.inFlight {
		return ErrWriteInProgress
	}
	s.pending = checkpoint.AppendEncode(s.scratch[:0], c)
	s.scratch = s.pending
	s.inFlight = true
	return nil
}

// Replace aborts the in-progress write and restarts it with new contents
// (the adapted TB algorithm's response to a dirty-bit change during the
// blocking period).
func (s *Stable) Replace(c *checkpoint.Checkpoint) error {
	if !s.inFlight {
		return ErrNoWrite
	}
	s.pending = checkpoint.AppendEncode(s.pending[:0], c)
	s.scratch = s.pending
	s.replaces++
	return nil
}

// Commit makes the pending write durable as the given round. Rounds must be
// committed in increasing order. With a backend attached, the round is
// written through (and fsynced) before the commit is acknowledged. A backend
// failure leaves the previous committed rounds intact and the write still
// in flight, so the caller can retry the same Commit (transient EIO) or
// Abandon it and fail-stop — the decision belongs to the checkpointer, not
// the storage layer.
func (s *Stable) Commit(round uint64) error {
	if !s.inFlight {
		return ErrNoWrite
	}
	if n := len(s.committed); n > 0 && s.committed[n-1].round >= round {
		return fmt.Errorf("storage: commit round %d not above %d", round, s.committed[n-1].round)
	}
	if s.backend != nil {
		keepFrom := s.keepFromAfter(round)
		if err := s.backend.Commit(round, s.pending, keepFrom); err != nil {
			return fmt.Errorf("storage: durable commit round %d: %w", round, err)
		}
	}
	s.committed = append(s.committed, committedRound{round: round, data: s.pending})
	// The committed history now owns the pending buffer; the next Begin
	// must not scribble over it, so detach scratch and let any round the
	// retention window evicts donate its buffer instead.
	s.scratch = nil
	if d := s.historyDepth(); len(s.committed) > d {
		evicted := s.committed[:len(s.committed)-d]
		s.scratch = evicted[len(evicted)-1].data[:0]
		s.committed = append(s.committed[:0], s.committed[len(s.committed)-d:]...)
	}
	s.pending = nil
	s.inFlight = false
	s.commits++
	return nil
}

// Abandon drops an in-progress write without committing (used when a crash
// interrupts checkpoint establishment; the previous committed checkpoint
// remains intact).
func (s *Stable) Abandon() {
	s.pending = nil
	s.inFlight = false
}

// InFlight reports whether a write is in progress.
func (s *Stable) InFlight() bool { return s.inFlight }

// Latest decodes and returns the most recent committed checkpoint. The
// boolean is false if nothing has ever been committed.
func (s *Stable) Latest() (*checkpoint.Checkpoint, bool, error) {
	if len(s.committed) == 0 {
		return nil, false, nil
	}
	return s.decode(s.committed[len(s.committed)-1].data)
}

// Round decodes the checkpoint committed as the given round, if retained.
func (s *Stable) Round(round uint64) (*checkpoint.Checkpoint, bool, error) {
	for _, c := range s.committed {
		if c.round == round {
			return s.decode(c.data)
		}
	}
	return nil, false, nil
}

// LatestRound returns the highest committed round number (0 if none).
func (s *Stable) LatestRound() uint64 {
	if len(s.committed) == 0 {
		return 0
	}
	return s.committed[len(s.committed)-1].round
}

// TruncateAbove discards committed rounds newer than round: recovery to an
// older round invalidates everything after it. With a backend attached the
// truncation is durable before it returns — a restart must never resurrect
// a rolled-back round.
func (s *Stable) TruncateAbove(round uint64) error {
	kept := s.committed[:0]
	for _, c := range s.committed {
		if c.round <= round {
			kept = append(kept, c)
		}
	}
	s.committed = kept
	if s.backend != nil {
		if err := s.backend.TruncateAbove(round); err != nil {
			return fmt.Errorf("storage: durable truncate above %d: %w", round, err)
		}
	}
	return nil
}

// keepFromAfter returns the lowest round the retention window will still
// hold once the given round commits (the backend may discard older ones).
func (s *Stable) keepFromAfter(round uint64) uint64 {
	window := append([]uint64(nil), roundsOf(s.committed)...)
	window = append(window, round)
	if d := s.historyDepth(); len(window) > d {
		window = window[len(window)-d:]
	}
	return window[0]
}

func roundsOf(cs []committedRound) []uint64 {
	out := make([]uint64, len(cs))
	for i, c := range cs {
		out[i] = c.round
	}
	return out
}

// SetBackend attaches a durability backend. Rounds already committed in
// memory are not retroactively persisted; attach before the first commit
// (or immediately after Load, whose records came from the backend anyway).
func (s *Stable) SetBackend(b Backend) { s.backend = b }

// Backend returns the attached durability backend (nil when in-memory).
func (s *Stable) Backend() Backend { return s.backend }

// Load seeds the committed history from recovered records (oldest first,
// strictly increasing rounds), replacing whatever the area held. It raises
// retention to cover everything loaded so a following Commit does not
// immediately evict recovered rounds.
func (s *Stable) Load(recs []Record) error {
	var last uint64
	for _, r := range recs {
		if r.Round <= last {
			return fmt.Errorf("storage: load rounds not increasing (%d after %d)", r.Round, last)
		}
		last = r.Round
	}
	s.committed = s.committed[:0]
	for _, r := range recs {
		s.committed = append(s.committed, committedRound{round: r.Round, data: append([]byte(nil), r.Data...)})
	}
	s.SetRetention(len(recs))
	s.pending = nil
	s.scratch = nil
	s.inFlight = false
	return nil
}

func (s *Stable) decode(data []byte) (*checkpoint.Checkpoint, bool, error) {
	c, err := checkpoint.Decode(data)
	if err != nil {
		return nil, false, errors.Join(ErrCorrupt, err)
	}
	return c, true, nil
}

// Bytes returns the total size of the retained checkpoints, an overhead
// metric.
func (s *Stable) Bytes() int {
	n := 0
	for _, c := range s.committed {
		n += len(c.data)
	}
	return n
}

// Commits returns the number of committed stable checkpoints.
func (s *Stable) Commits() uint64 { return s.commits }

// Replaces returns how many times an in-progress write was replaced.
func (s *Stable) Replaces() uint64 { return s.replaces }
