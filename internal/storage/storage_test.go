package storage

import (
	"errors"
	"testing"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
)

func ckpt(step uint64) *checkpoint.Checkpoint {
	c := checkpoint.New(checkpoint.Stable, msg.P2)
	c.State.Step = step
	return c
}

func TestVolatileSaveAndLatest(t *testing.T) {
	var v Volatile
	if _, ok := v.Latest(); ok {
		t.Fatal("empty volatile store should report no checkpoint")
	}
	v.Save(ckpt(1))
	v.Save(ckpt(2))
	got, ok := v.Latest()
	if !ok || got.State.Step != 2 {
		t.Fatalf("Latest = %+v,%v, want step 2", got, ok)
	}
	if v.Saves() != 2 {
		t.Fatalf("Saves = %d, want 2", v.Saves())
	}
}

func TestVolatileSaveClones(t *testing.T) {
	var v Volatile
	c := ckpt(1)
	v.Save(c)
	c.State.Step = 99
	got, _ := v.Latest()
	if got.State.Step != 1 {
		t.Fatal("volatile store shares memory with caller")
	}
}

func TestVolatileCrashLosesContents(t *testing.T) {
	var v Volatile
	v.Save(ckpt(1))
	v.Crash()
	if _, ok := v.Latest(); ok {
		t.Fatal("crash should clear volatile contents")
	}
	if v.Saves() != 1 {
		t.Fatal("crash should not clear the overhead counter")
	}
}

func TestStableWriteLifecycle(t *testing.T) {
	var s Stable
	if _, ok, err := s.Latest(); ok || err != nil {
		t.Fatalf("empty stable store: ok=%v err=%v", ok, err)
	}
	if err := s.Begin(ckpt(1)); err != nil {
		t.Fatal(err)
	}
	if !s.InFlight() {
		t.Fatal("write should be in flight")
	}
	// Not yet durable.
	if _, ok, _ := s.Latest(); ok {
		t.Fatal("uncommitted write should not be visible")
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Latest()
	if err != nil || !ok || got.State.Step != 1 {
		t.Fatalf("Latest = %+v,%v,%v", got, ok, err)
	}
	if s.Commits() != 1 {
		t.Fatalf("Commits = %d", s.Commits())
	}
	if s.Bytes() == 0 {
		t.Fatal("committed checkpoint should occupy bytes")
	}
}

func TestStableReplaceSwapsContents(t *testing.T) {
	var s Stable
	if err := s.Begin(ckpt(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Replace(ckpt(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Latest()
	if err != nil || got.State.Step != 2 {
		t.Fatalf("Latest after replace = %+v, %v", got, err)
	}
	if s.Replaces() != 1 {
		t.Fatalf("Replaces = %d, want 1", s.Replaces())
	}
}

func TestStableDoubleBeginRejected(t *testing.T) {
	var s Stable
	if err := s.Begin(ckpt(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(ckpt(2)); !errors.Is(err, ErrWriteInProgress) {
		t.Fatalf("second Begin: err = %v", err)
	}
}

func TestStableCommitWithoutBegin(t *testing.T) {
	var s Stable
	if err := s.Commit(1); !errors.Is(err, ErrNoWrite) {
		t.Fatalf("Commit: err = %v", err)
	}
	if err := s.Replace(ckpt(1)); !errors.Is(err, ErrNoWrite) {
		t.Fatalf("Replace: err = %v", err)
	}
}

func TestStableAbandonKeepsPrevious(t *testing.T) {
	var s Stable
	if err := s.Begin(ckpt(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(ckpt(2)); err != nil {
		t.Fatal(err)
	}
	s.Abandon()
	if s.InFlight() {
		t.Fatal("Abandon should clear in-flight state")
	}
	got, ok, err := s.Latest()
	if err != nil || !ok || got.State.Step != 1 {
		t.Fatalf("Latest after abandon = %+v,%v,%v — previous commit must survive", got, ok, err)
	}
	if err := s.Begin(ckpt(3)); err != nil {
		t.Fatalf("Begin after abandon: %v", err)
	}
}

func TestStableSurvivesContentsRoundTrip(t *testing.T) {
	var s Stable
	c := checkpoint.New(checkpoint.Stable, msg.P1Sdw)
	c.Ndc = 5
	c.Dirty = true
	c.SentTo[msg.P2] = 7
	c.Unacked = []msg.Message{{Kind: msg.Internal, From: msg.P1Sdw, To: msg.P2, SN: 7}}
	if err := s.Begin(c); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Latest()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got.Ndc != 5 || !got.Dirty || got.SentTo[msg.P2] != 7 || len(got.Unacked) != 1 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
}
