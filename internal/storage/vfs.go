package storage

import (
	"fmt"
	"io"
	"os"
)

// VFS abstracts the handful of filesystem operations FileBackend performs, so
// the durable commit path can run against the real OS (the default), a
// fault-injecting wrapper (FaultVFS), or a fully in-memory model with
// crash-point enumeration (MemVFS). The interface is deliberately exactly the
// backend's footprint — open for append, create-truncate, write, fsync,
// atomic rename, directory fsync — so every durability-relevant syscall is a
// seam the crash wall can cut at.
type VFS interface {
	// ReadFile returns the full contents of path. A missing file must
	// report an error satisfying errors.Is(err, os.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing file
	// (O_WRONLY|O_CREATE|O_TRUNC).
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent
	// (O_WRONLY|O_CREATE|O_APPEND), and returns the current size.
	OpenAppend(path string) (File, int64, error)
	// Rename atomically replaces newPath with oldPath. Durability of the
	// new directory entry may require a following SyncDir.
	Rename(oldPath, newPath string) error
	// SyncDir fsyncs the directory, making renames and entry creations
	// within it durable.
	SyncDir(dir string) error
}

// File is an open log or temp file: sequential writes, fsync, close.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage; once it returns nil
	// the written bytes must survive a crash.
	Sync() error
	Close() error
}

// OSVFS is the real-filesystem VFS: every method is a thin wrapper over the
// corresponding os call, adding no state and no overhead beyond the interface
// dispatch. It is the default for OpenFile.
type OSVFS struct{}

var _ VFS = OSVFS{}

// ReadFile implements VFS.
func (OSVFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Create implements VFS.
func (OSVFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements VFS.
func (OSVFS) OpenAppend(path string) (File, int64, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("storage: stat stable log: %w", err)
	}
	return f, st.Size(), nil
}

// Rename implements VFS.
func (OSVFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// SyncDir implements VFS.
func (OSVFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: fsync dir: %w", err)
	}
	return nil
}
