// Package storage models the two storage tiers the coordinated protocols
// write checkpoints to: node-local volatile storage (RAM), which is cheap but
// lost on a hardware fault, and stable storage (disk), which survives crashes
// and supports the adapted TB protocol's abort-and-replace write semantics.
package storage

import "github.com/synergy-ft/synergy/internal/checkpoint"

// Volatile is a process's volatile-storage checkpoint slot. Per the MDCD
// protocol a process never rolls back further than its most recent
// checkpoint, so only the latest checkpoint is retained.
type Volatile struct {
	latest *checkpoint.Checkpoint
	saves  uint64
}

// Save stores a checkpoint, displacing any previous one. The checkpoint is
// cloned so later mutation of the live state cannot alter it.
func (v *Volatile) Save(c *checkpoint.Checkpoint) {
	v.latest = c.Clone()
	v.saves++
}

// Latest returns the most recent checkpoint, or false if none exists (or the
// node has crashed since the last save).
func (v *Volatile) Latest() (*checkpoint.Checkpoint, bool) {
	if v.latest == nil {
		return nil, false
	}
	return v.latest, true
}

// Crash models the loss of volatile contents when the hosting node fails.
func (v *Volatile) Crash() { v.latest = nil }

// Saves returns the number of checkpoints established, an overhead metric.
func (v *Volatile) Saves() uint64 { return v.saves }
