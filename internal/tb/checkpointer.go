package tb

import (
	"fmt"
	"time"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/storage"
	"github.com/synergy-ft/synergy/internal/trace"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Checkpointer runs the TB protocol for one process: it fires createCKPT on
// the local clock every Δ, manages the blocking period and the stable write
// lifecycle, tracks unacknowledged messages, and exposes the state the
// modified MDCD algorithms consult (InBlocking, Ndc).
type Checkpointer struct {
	proc  msg.ProcID
	cfg   Config
	clock *vtime.Clock
	rt    Runtime
	host  Host
	rec   Recorder

	// Stable is the process's stable-storage slot.
	Stable storage.Stable

	// OnResyncRequest, when set, is invoked when the worst-case clock
	// deviation grows past the configured fraction of Δ; the coordinator
	// resynchronizes every node's clock and calls NoteResynced.
	OnResyncRequest func()

	// Obs holds the checkpointer's metrics; the zero value disables them.
	Obs Obs

	// OnCommitFailed, when set, is invoked after a durable commit has
	// exhausted its retries: the checkpoint cannot be made stable, so the
	// node must not acknowledge it. The checkpointer stays blocked (held
	// messages are not released, Ndc does not advance) and expects the
	// handler to crash-stop the node — the live middleware kills it and
	// restarts it through hardware recovery. The handler runs in timer
	// context (under the node lock in live mode); it must defer actual
	// teardown to another goroutine. When nil, an exhausted commit is
	// abandoned and the round is skipped, the pre-durability behaviour.
	OnCommitFailed func(error)

	ndc         uint64 // committed stable checkpoints (local Ndc)
	ndcAtResync uint64
	retries     int        // commit retries spent on the current round
	nextLocal   vtime.Time // dCKPT_time: next expiry on the local clock
	inBlocking  bool
	expectDirty bool // the dirty-bit value the in-flight write matches
	running     bool
	cancelTimer func()
	cancelBlock func()

	unacked []msg.Message // sent, not yet acknowledged, in send order

	stats CheckpointerStats
}

// CheckpointerStats aggregates protocol activity for overhead reporting.
type CheckpointerStats struct {
	// Commits counts committed stable checkpoints.
	Commits uint64
	// Replaces counts abort-and-replace adjustments during blocking.
	Replaces uint64
	// SkippedBusy counts timer expiries ignored because a write was still
	// in flight (configuration pathology; Validate prevents it).
	SkippedBusy uint64
	// CommitRetries counts durable-commit retries after transient backend
	// failures.
	CommitRetries uint64
	// ResyncRequests counts resynchronization requests issued.
	ResyncRequests uint64
	// BlockingTotal accumulates time spent in blocking periods.
	BlockingTotal time.Duration
}

// NewCheckpointer creates a checkpointer for proc. The clock models the
// node's local timer; cfg must validate.
func NewCheckpointer(proc msg.ProcID, cfg Config, clock *vtime.Clock, rt Runtime, host Host, rec Recorder) (*Checkpointer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rec == nil {
		rec = func(trace.Event) {}
	}
	return &Checkpointer{proc: proc, cfg: cfg, clock: clock, rt: rt, host: host, rec: rec}, nil
}

// Ndc returns the stable-storage checkpoint sequence number the MDCD
// algorithms gate on: the count of committed stable checkpoints.
func (c *Checkpointer) Ndc() uint64 { return c.ndc }

// InBlocking reports whether a blocking period is in progress.
func (c *Checkpointer) InBlocking() bool { return c.inBlocking }

// Stats returns the activity counters.
func (c *Checkpointer) Stats() CheckpointerStats { return c.stats }

// Clock exposes the node's local clock (the coordinator resynchronizes it).
func (c *Checkpointer) Clock() *vtime.Clock { return c.clock }

// Start arms the checkpoint timer at the next multiple of Δ on the local
// clock. Safe at system start (all clocks read ≈0, so every process lands in
// the same tick bucket); after a recovery use StartAt with a common target —
// recomputing the bucket from each node's own skewed clock near a tick
// boundary would misalign the round numbering permanently.
func (c *Checkpointer) Start() {
	local := c.clock.Read(c.rt.Now())
	k := int64(local)/int64(c.cfg.Interval) + 1
	c.StartAt(vtime.Time(k * int64(c.cfg.Interval)))
}

// StartAt arms the checkpoint timer at an explicit local-clock instant. The
// recovery orchestrator passes the same target to every node, keeping the
// tick schedule — and hence the checkpoint round numbering — globally
// aligned across the restart.
func (c *Checkpointer) StartAt(localTarget vtime.Time) {
	c.running = true
	c.nextLocal = localTarget
	c.armTimer()
}

// Stop cancels timers and abandons any in-flight write.
func (c *Checkpointer) Stop() {
	c.running = false
	if c.cancelTimer != nil {
		c.cancelTimer()
		c.cancelTimer = nil
	}
	if c.cancelBlock != nil {
		c.cancelBlock()
		c.cancelBlock = nil
	}
	if c.Stable.InFlight() {
		c.Stable.Abandon()
	}
	c.inBlocking = false
}

func (c *Checkpointer) armTimer() {
	fireAt := c.clock.WhenReads(c.nextLocal, c.rt.Now())
	c.cancelTimer = c.rt.After(fireAt.Sub(c.rt.Now()), c.createCKPT)
}

// createCKPT implements Figure 5. The dirty bit selects the contents: a
// clean process saves its current state, a potentially contaminated one
// copies its most recent volatile checkpoint (which captured its most recent
// non-contaminated state). The write then rides through a blocking period
// during which the process reads no application messages.
func (c *Checkpointer) createCKPT() {
	if !c.running {
		return
	}
	defer func() {
		// dCKPT_time += Δ; set_timer(createCKPT, dCKPT_time)
		c.nextLocal = c.nextLocal.Add(c.cfg.Interval)
		c.armTimer()
	}()
	if c.Stable.InFlight() {
		c.stats.SkippedBusy++
		c.Obs.SkippedBusy.Inc()
		return
	}

	dirty := c.host.EffectiveDirty()
	// The contents carry the unacknowledged-message set captured with
	// them: the host's Snapshot embeds the live set, and a copied
	// volatile checkpoint retains the set stored at its establishment —
	// re-sending is always relative to the restored state.
	contents := c.chooseContents(dirty)
	if err := c.Stable.Begin(contents); err != nil {
		// Unreachable given the InFlight guard; surface loudly in traces.
		c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.StableBegun, Note: "begin failed: " + err.Error()})
		return
	}
	c.expectDirty = dirty
	c.retries = 0
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.StableBegun, Ckpt: contents.Kind,
		Note: fmt.Sprintf("dirty=%v", dirty)})

	blocking := c.cfg.BlockingPeriod(c.host.EffectiveDirty(), c.elapsedSinceResync())
	c.inBlocking = true
	c.stats.BlockingTotal += blocking
	c.Obs.Blocking.Observe(blocking.Seconds())
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.BlockStarted,
		Note: fmt.Sprintf("τ(b)=%v", blocking)})
	c.cancelBlock = c.rt.After(blocking, c.endBlocking)

	c.maybeRequestResync()
}

// chooseContents builds the initial write_disk contents. The original
// protocol always saves the current state — even a potentially contaminated
// one, which is exactly the Figure 4(a) failure of the naive combination; the
// checkpoint's Dirty flag records that honestly. The adapted protocol copies
// the most recent volatile checkpoint instead when the process is dirty.
func (c *Checkpointer) chooseContents(dirty bool) *checkpoint.Checkpoint {
	if c.cfg.Variant == Original || !dirty {
		return c.host.Snapshot(checkpoint.Stable)
	}
	v, ok := c.host.LatestVolatile()
	if !ok {
		// A dirty process always has a volatile checkpoint (Type-1 or
		// pseudo, taken before contamination); if the protocol is run
		// degenerately without one, fall back to the current state.
		s := c.host.Snapshot(checkpoint.Stable)
		return s
	}
	cp := v.Clone()
	cp.Kind = checkpoint.Stable
	cp.Dirty = false // the volatile checkpoint captured a clean state
	return cp
}

// NotifyDirtyChanged is the write_disk monitoring hook: if the dirty bit
// changes while the write is in flight (a passed-AT arrived during the
// blocking period), the adapted protocol aborts the copy and replaces the
// checkpoint contents with the current process state.
func (c *Checkpointer) NotifyDirtyChanged(dirty bool) {
	if c.cfg.Variant != Adapted || c.cfg.DisableContentAdjust || !c.inBlocking || !c.Stable.InFlight() {
		return
	}
	if dirty == c.expectDirty {
		return
	}
	replacement := c.host.Snapshot(checkpoint.Stable)
	if err := c.Stable.Replace(replacement); err != nil {
		c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.StableReplaced, Note: "replace failed: " + err.Error()})
		return
	}
	c.expectDirty = dirty
	c.stats.Replaces++
	c.Obs.StableReplaces.Inc()
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.StableReplaced, Ckpt: checkpoint.Stable,
		Note: fmt.Sprintf("dirty bit flipped to %v", dirty)})
}

// endBlocking commits the write, increments Ndc, and releases held messages.
// A failed durable commit keeps the node blocked: acknowledging (releasing
// held messages and advancing Ndc) a round that never reached the platter
// would break the recovery-line invariant, so the commit is retried with
// capped backoff and, when retries exhaust, the node fail-stops through
// OnCommitFailed instead of acking.
func (c *Checkpointer) endBlocking() {
	c.cancelBlock = nil
	if c.Stable.InFlight() {
		c.commitStable()
		return
	}
	c.finishBlocking()
}

// commitStable is the single writer of the commit/ack pair: it commits the
// in-flight durable write, advances Ndc, and ends the blocking period, so
// the commit-before-ack ordering lives in exactly one place. On failure it
// defers to commitFailed, which keeps the node blocked.
func (c *Checkpointer) commitStable() {
	if err := c.Stable.Commit(c.ndc + 1); err != nil {
		c.commitFailed(err)
		return
	}
	c.ndc++
	c.stats.Commits++
	c.Obs.StableCommits.Inc()
	note := fmt.Sprintf("Ndc=%d", c.ndc)
	if c.retries > 0 {
		note = fmt.Sprintf("Ndc=%d (after %d retries)", c.ndc, c.retries)
	}
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.StableCommitted, Ckpt: checkpoint.Stable, Note: note})
	c.finishBlocking()
}

// finishBlocking ends the blocking period and releases held messages.
func (c *Checkpointer) finishBlocking() {
	c.inBlocking = false
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.BlockEnded})
	c.host.ReleaseHeld()
}

// commitFailed handles a durable-commit failure: retry with capped backoff
// while attempts remain, then either hand the node to OnCommitFailed
// (fail-stop without acking) or — with no handler — abandon the round and
// move on, the in-memory-only behaviour.
func (c *Checkpointer) commitFailed(err error) {
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.StableCommitted, Note: "commit failed: " + err.Error()})
	if c.retries < c.cfg.CommitRetryLimit {
		c.retries++
		c.stats.CommitRetries++
		c.Obs.CommitRetries.Inc()
		c.cancelBlock = c.rt.After(c.retryDelay(c.retries), c.retryCommit)
		return
	}
	if c.OnCommitFailed != nil {
		// Stay blocked: no ack, no Ndc advance, no message release. The
		// handler crash-stops the node; Stop abandons the write.
		c.OnCommitFailed(err)
		return
	}
	c.Stable.Abandon()
	c.finishBlocking()
}

// retryCommit re-attempts the in-flight durable commit.
func (c *Checkpointer) retryCommit() {
	c.cancelBlock = nil
	if !c.running || !c.Stable.InFlight() {
		return
	}
	c.commitStable()
}

// retryDelay is the capped exponential backoff before the given (1-based)
// retry attempt.
func (c *Checkpointer) retryDelay(attempt int) time.Duration {
	base := c.cfg.CommitRetryBackoff
	if base <= 0 {
		base = c.cfg.Interval / 32
	}
	if base <= 0 {
		base = time.Millisecond
	}
	d := base << (attempt - 1)
	if cap := 8 * base; d > cap {
		d = cap
	}
	return d
}

func (c *Checkpointer) elapsedSinceResync() time.Duration {
	// τ = Ndc·Δ counted from the last resynchronization; the +1 covers
	// the interval currently completing.
	return time.Duration(c.ndc-c.ndcAtResync+1) * c.cfg.Interval
}

func (c *Checkpointer) maybeRequestResync() {
	if c.OnResyncRequest == nil {
		return
	}
	skew := vtime.WorstCaseSkew(c.cfg.Clock, c.elapsedSinceResync())
	if float64(skew) > c.cfg.resyncFraction()*float64(c.cfg.Interval) {
		c.stats.ResyncRequests++
		c.Obs.ResyncRequests.Inc()
		c.OnResyncRequest()
	}
}

// NoteResynced informs the checkpointer its clock was just resynchronized.
func (c *Checkpointer) NoteResynced() {
	c.ndcAtResync = c.ndc
	c.rec(trace.Event{At: c.rt.Now(), Proc: c.proc, Kind: trace.Resynced})
}

// AbortCycle abandons an in-flight checkpoint establishment without touching
// the committed checkpoint or the main timer: recovery interrupting a
// blocking period must not let a write capturing a pre-recovery state commit.
func (c *Checkpointer) AbortCycle() {
	if c.cancelBlock != nil {
		c.cancelBlock()
		c.cancelBlock = nil
	}
	if c.Stable.InFlight() {
		c.Stable.Abandon()
	}
	c.inBlocking = false
}
