package tb

import "github.com/synergy-ft/synergy/internal/obs"

// Obs bundles the checkpointer's metrics. The zero value (all-nil metrics)
// is the disabled state: every update is a nil-receiver no-op, so the
// deterministic simulator pays one branch and the protocol's event order is
// untouched. τ(b) is observed from the protocol's own computed blocking
// duration, never from the wall clock, so the histogram is exact in both the
// simulator and the live middleware.
type Obs struct {
	// StableCommits counts committed stable checkpoints (Ndc increments).
	StableCommits *obs.Counter
	// StableReplaces counts abort-and-replace content adjustments.
	StableReplaces *obs.Counter
	// SkippedBusy counts timer expiries ignored because a write was in
	// flight.
	SkippedBusy *obs.Counter
	// ResyncRequests counts clock-resynchronization requests.
	ResyncRequests *obs.Counter
	// CommitRetries counts durable-commit retries after transient backend
	// failures (EIO on append or fsync).
	CommitRetries *obs.Counter
	// Blocking is the τ(b) blocking-duration histogram, in seconds.
	Blocking *obs.Histogram
}

// NewObs registers the checkpointer metrics on r with the given fixed labels
// (the live middleware passes proc="P1act" etc.). A nil registry yields the
// zero (disabled) bundle.
func NewObs(r *obs.Registry, labels ...obs.Label) Obs {
	return Obs{
		StableCommits: r.Counter("synergy_tb_stable_commits_total",
			"Committed stable checkpoints (Ndc increments).", labels...),
		StableReplaces: r.Counter("synergy_tb_stable_replaces_total",
			"Abort-and-replace adjustments of an in-flight stable write.", labels...),
		SkippedBusy: r.Counter("synergy_tb_skipped_busy_total",
			"Checkpoint timer expiries skipped because a stable write was still in flight.", labels...),
		ResyncRequests: r.Counter("synergy_tb_resync_requests_total",
			"Clock resynchronization requests issued.", labels...),
		CommitRetries: r.Counter("synergy_tb_commit_retries_total",
			"Durable stable-commit retries after transient backend failures.", labels...),
		Blocking: r.Histogram("synergy_tb_blocking_seconds",
			"TB blocking-period length tau(b) per stable checkpoint.",
			obs.ExpBuckets(0.0005, 2, 12), labels...),
	}
}
