package tb

import (
	"testing"
	"time"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

func TestStartAtAlignsTicks(t *testing.T) {
	host := &fakeHost{}
	eng, cp := newCP(t, cfgAdapted(), host)
	eng.RunUntil(vtime.FromSeconds(9.9)) // near a tick boundary
	cp.StartAt(vtime.FromSeconds(30))    // the common recovery target
	eng.RunUntil(vtime.FromSeconds(29))
	if cp.Ndc() != 0 {
		t.Fatalf("no commit expected before the target, Ndc=%d", cp.Ndc())
	}
	eng.RunUntil(vtime.FromSeconds(31))
	if cp.Ndc() != 1 {
		t.Fatalf("Ndc = %d, want 1 right after the target tick", cp.Ndc())
	}
}

func TestStableAtRoundMissing(t *testing.T) {
	host := &fakeHost{}
	_, cp := newCP(t, cfgAdapted(), host)
	if _, err := cp.StableAtRound(3); err == nil {
		t.Fatal("missing round should error")
	}
}

func TestPrepareRecoveryAtUnretainedRound(t *testing.T) {
	host := &fakeHost{}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(35)) // rounds 1..3; round 1 evicted
	if _, err := cp.PrepareRecoveryAt(1); err == nil {
		t.Fatal("recovering an evicted round should error")
	}
}

func TestAbortCycleKeepsCommittedCheckpoint(t *testing.T) {
	host := &fakeHost{step: 1}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12)) // round 1 committed
	host.step = 2
	eng.RunUntil(vtime.FromSeconds(20).Add(time.Millisecond)) // round 2 in flight
	if !cp.Stable.InFlight() {
		t.Fatal("setup: write should be in flight")
	}
	cp.AbortCycle()
	if cp.InBlocking() || cp.Stable.InFlight() {
		t.Fatal("AbortCycle should clear the in-flight write and blocking")
	}
	got, err := cp.LatestStable()
	if err != nil || got.State.Step != 1 {
		t.Fatalf("committed round must survive: %+v, %v", got, err)
	}
	// The main timer keeps running: round 2 commits at the next tick.
	eng.RunUntil(vtime.FromSeconds(31))
	if cp.Ndc() != 2 {
		t.Fatalf("Ndc = %d, want 2 after the next tick", cp.Ndc())
	}
}

func TestReconcileUnacked(t *testing.T) {
	host := &fakeHost{}
	_, cp := newCP(t, cfgAdapted(), host)
	cp.OnSend(msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, ChanSeq: 3})
	cp.OnSend(msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, ChanSeq: 4})
	cp.OnSend(msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Sdw, ChanSeq: 2})
	// The restored state has only sent 3 messages to P1act and 2 to P1sdw.
	cp.ReconcileUnacked(func(to msg.ProcID) uint64 {
		if to == msg.P1Act {
			return 3
		}
		return 2
	})
	if cp.UnackedLen() != 2 {
		t.Fatalf("UnackedLen = %d, want 2 (ChanSeq 4 pruned)", cp.UnackedLen())
	}
}

func TestAdoptUnacked(t *testing.T) {
	host := &fakeHost{}
	_, cp := newCP(t, cfgAdapted(), host)
	cp.OnSend(msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, ChanSeq: 9})
	stored := []msg.Message{
		{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, ChanSeq: 1},
		{Kind: msg.Internal, From: msg.P2, To: msg.P1Sdw, ChanSeq: 1},
	}
	cp.AdoptUnacked(stored)
	if cp.UnackedLen() != 2 {
		t.Fatalf("UnackedLen = %d", cp.UnackedLen())
	}
	got := cp.UnackedSnapshot()
	if got[0].ChanSeq != 1 || got[1].To != msg.P1Sdw {
		t.Fatalf("adopted set wrong: %+v", got)
	}
	cp.AdoptUnacked(nil)
	if cp.UnackedLen() != 0 {
		t.Fatal("adopting nil should clear the set")
	}
}

func TestNotifyDirtyChangedOutsideBlockingIsNoop(t *testing.T) {
	host := &fakeHost{dirty: true, volatile: checkpoint.New(checkpoint.Type1, msg.P2)}
	_, cp := newCP(t, cfgAdapted(), host)
	cp.NotifyDirtyChanged(false) // no write in flight
	if cp.Stats().Replaces != 0 {
		t.Fatal("no replacement without an in-flight write")
	}
}

func TestElapsedGrowsBlockingUntilResync(t *testing.T) {
	cfg := cfgAdapted()
	cfg.Clock = vtime.ClockConfig{MaxDeviation: time.Millisecond, DriftRate: 1e-4}
	host := &fakeHost{}
	eng, cp := newCP(t, cfg, host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(15))
	early := cp.Stats().BlockingTotal
	eng.RunUntil(vtime.FromSeconds(95))
	lateAvg := (cp.Stats().BlockingTotal - early) / 8
	if lateAvg <= early {
		t.Fatalf("blocking should grow with elapsed τ: first=%v lateAvg=%v", early, lateAvg)
	}
}
