package tb

import (
	"errors"
	"testing"
	"time"

	"github.com/synergy-ft/synergy/internal/vtime"
)

// flakyBackend fails the first N commits, then succeeds. It models a
// transient EIO window on the durable log.
type flakyBackend struct {
	failures int
	commits  int
}

var errInjectedEIO = errors.New("injected EIO")

func (b *flakyBackend) Commit(round uint64, data []byte, keepFrom uint64) error {
	if b.failures > 0 {
		b.failures--
		return errInjectedEIO
	}
	b.commits++
	return nil
}

func (b *flakyBackend) TruncateAbove(uint64) error { return nil }
func (b *flakyBackend) Close() error               { return nil }

func TestConfigValidateRejectsNegativeRetryKnobs(t *testing.T) {
	cfg := cfgAdapted()
	cfg.CommitRetryLimit = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative CommitRetryLimit passed validation")
	}
	cfg = cfgAdapted()
	cfg.CommitRetryBackoff = -time.Millisecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative CommitRetryBackoff passed validation")
	}
}

// TestCommitRetryRecoversFromTransientFailure: the backend rejects the first
// two commit attempts; with CommitRetryLimit 3 the checkpointer must retry
// inside the blocking period and land the round — the fault is invisible to
// the protocol apart from the retry counter.
func TestCommitRetryRecoversFromTransientFailure(t *testing.T) {
	cfg := cfgAdapted()
	cfg.CommitRetryLimit = 3
	cfg.CommitRetryBackoff = 50 * time.Millisecond
	host := &fakeHost{step: 4}
	eng, cp := newCP(t, cfg, host)
	be := &flakyBackend{failures: 2}
	cp.Stable.SetBackend(be)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12))
	if cp.Ndc() != 1 {
		t.Fatalf("Ndc = %d, want 1 (commit must succeed on retry)", cp.Ndc())
	}
	if be.commits != 1 {
		t.Fatalf("backend commits = %d, want 1", be.commits)
	}
	if got := cp.Stats().CommitRetries; got != 2 {
		t.Fatalf("CommitRetries = %d, want 2", got)
	}
	if cp.InBlocking() {
		t.Fatal("blocking period must end after the successful retry")
	}
	if host.released != 1 {
		t.Fatalf("ReleaseHeld calls = %d, want 1", host.released)
	}
}

// TestCommitRetryExhaustionFailStops: a persistent backend failure must never
// be acked — after the retry budget is spent the OnCommitFailed hook fires,
// Ndc stays unchanged, held messages stay held, and the node remains blocked
// (fail-stop semantics: the hook's owner tears the node down).
func TestCommitRetryExhaustionFailStops(t *testing.T) {
	cfg := cfgAdapted()
	cfg.CommitRetryLimit = 2
	cfg.CommitRetryBackoff = 50 * time.Millisecond
	host := &fakeHost{step: 4}
	eng, cp := newCP(t, cfg, host)
	be := &flakyBackend{failures: 1 << 30} // never recovers
	cp.Stable.SetBackend(be)
	var hookErrs []error
	cp.OnCommitFailed = func(err error) { hookErrs = append(hookErrs, err) }
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(30))
	if len(hookErrs) != 1 {
		t.Fatalf("OnCommitFailed fired %d times, want 1", len(hookErrs))
	}
	if !errors.Is(hookErrs[0], errInjectedEIO) {
		t.Fatalf("hook error = %v, want the backend's", hookErrs[0])
	}
	if cp.Ndc() != 0 {
		t.Fatalf("Ndc = %d, want 0: a round that never became durable must not be acked", cp.Ndc())
	}
	if got := cp.Stats().CommitRetries; got != 2 {
		t.Fatalf("CommitRetries = %d, want the full budget of 2", got)
	}
	if !cp.InBlocking() {
		t.Fatal("node must stay blocked after exhaustion (teardown is the hook owner's job)")
	}
	if host.released != 0 {
		t.Fatalf("ReleaseHeld calls = %d, want 0: held messages must not flow", host.released)
	}
}

// TestCommitFailureWithoutRetryAbandons is the legacy (simulator) behavior:
// no retry budget and no hook means the failed round is abandoned and the
// node carries on un-durably, exactly as before the retry path existed.
func TestCommitFailureWithoutRetryAbandons(t *testing.T) {
	host := &fakeHost{step: 4}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Stable.SetBackend(&flakyBackend{failures: 1 << 30})
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12))
	if cp.Ndc() != 0 {
		t.Fatalf("Ndc = %d, want 0", cp.Ndc())
	}
	if cp.InBlocking() {
		t.Fatal("legacy path must end the blocking period after abandoning")
	}
	if cp.Stable.InFlight() {
		t.Fatal("failed write must be abandoned on the legacy path")
	}
	if host.released != 1 {
		t.Fatalf("ReleaseHeld calls = %d, want 1 (legacy path releases and moves on)", host.released)
	}
}
