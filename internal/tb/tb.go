// Package tb implements the time-based (TB) checkpointing protocol of Neves
// and Fuchs — stable-storage checkpoints on approximately synchronized,
// periodically resynchronized timers, with blocking periods instead of
// message-exchange coordination — in both its original form and the adapted
// form of the paper's Figure 5 that coordinates with the modified MDCD
// protocol:
//
//	createCKPT() {
//	    if (dirty_bit == 0) write_disk(current_state, 0, null);
//	    else                write_disk(rCKPT, 1, current_state);
//	    Ndc++;
//	    dCKPT_time += Δ; set_timer(createCKPT, dCKPT_time);
//	    if (worst-case deviation too large) requestResyncTimers();
//	}
//
// The write_disk semantics — begin with the chosen contents, monitor the
// dirty bit through the blocking period, abort-and-replace with the current
// state if the bit flips — are realized against the storage.Stable write
// lifecycle (Begin/Replace/Commit).
package tb

import (
	"fmt"
	"time"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/trace"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Variant selects the protocol form.
type Variant uint8

// Protocol variants.
const (
	// Original is the Neves-Fuchs protocol: the current state is always
	// saved, and the blocking period (δ + 2ρτ − tmin) serves consistency
	// only; recoverability comes from saving unacknowledged messages.
	Original Variant = iota + 1
	// Adapted is the paper's coordinated variant: checkpoint contents are
	// chosen by the dirty bit, the blocking period becomes
	// τ(b) = δ + 2ρτ + Tm(b) with Tm(b) = b·tmax − (1−b)·tmin, passed-AT
	// notifications are monitored during blocking, and an in-progress
	// write responds to dirty-bit changes.
	Adapted
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Original:
		return "original"
	case Adapted:
		return "adapted"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// Config parameterizes a node's checkpointer.
type Config struct {
	// Variant selects original or adapted behaviour.
	Variant Variant
	// Interval is Δ, the checkpointing interval (in local clock time).
	Interval time.Duration
	// Clock carries δ (maximum mutual deviation at resync) and ρ (drift).
	Clock vtime.ClockConfig
	// MinDelay and MaxDelay are the interconnect bounds tmin and tmax.
	MinDelay, MaxDelay time.Duration
	// ResyncFraction triggers a timer resynchronization request when the
	// worst-case deviation δ + 2ρτ exceeds this fraction of Δ. The paper's
	// resync condition (Figure 5) bounds blocking-period growth the same
	// way; 0 selects the default of 0.25.
	ResyncFraction float64
	// DisableBlocking removes the blocking period (ablation; reproduces
	// the consistency violations of the paper's Figure 2).
	DisableBlocking bool
	// CommitRetryLimit is how many times a failed durable commit is retried
	// before the checkpointer gives up on the round — transient EIO on a
	// real disk is common enough that a single failure should not crash a
	// node. 0 (the default) disables retries; the simulator keeps it there
	// since the in-memory Stable cannot fail.
	CommitRetryLimit int
	// CommitRetryBackoff is the delay before the first commit retry; each
	// further retry doubles it, capped at eight times the base. 0 with a
	// positive limit defaults to Interval/32, keeping the whole retry
	// ladder well inside one checkpoint interval.
	CommitRetryBackoff time.Duration
	// DisableContentAdjust turns off the in-blocking responsiveness of
	// the adapted protocol: contents are still chosen by the dirty bit,
	// but the write ignores dirty-bit changes and the blocking period is
	// not extended to cover in-transit passed-AT notifications. This is
	// the strawman of Section 4.1 whose recoverability failure Figure
	// 4(b) illustrates.
	DisableContentAdjust bool
}

// Validate checks the configuration is self-consistent: the worst blocking
// period must fit well inside the checkpoint interval.
func (c Config) Validate() error {
	if c.Variant != Original && c.Variant != Adapted {
		return fmt.Errorf("tb: unknown variant %d", c.Variant)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("tb: non-positive interval %v", c.Interval)
	}
	if err := c.Clock.Validate(); err != nil {
		return err
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("tb: invalid delay bounds [%v, %v]", c.MinDelay, c.MaxDelay)
	}
	if c.ResyncFraction < 0 || c.ResyncFraction > 1 {
		return fmt.Errorf("tb: resync fraction %v outside [0,1]", c.ResyncFraction)
	}
	if c.CommitRetryLimit < 0 {
		return fmt.Errorf("tb: negative commit retry limit %d", c.CommitRetryLimit)
	}
	if c.CommitRetryBackoff < 0 {
		return fmt.Errorf("tb: negative commit retry backoff %v", c.CommitRetryBackoff)
	}
	worst := c.Clock.MaxDeviation + c.MaxDelay
	if worst >= c.Interval {
		return fmt.Errorf("tb: blocking bound %v must be below the interval %v", worst, c.Interval)
	}
	return nil
}

func (c Config) resyncFraction() float64 {
	if c.ResyncFraction == 0 {
		return 0.25
	}
	return c.ResyncFraction
}

// BlockingPeriod returns τ(b) for the given dirty bit and elapsed time τ
// since the last resynchronization: δ + 2ρτ + Tm(b), where Tm(1) = tmax and
// Tm(0) = −tmin (Table 1). The original variant always uses Tm(0).
func (c Config) BlockingPeriod(dirty bool, elapsed time.Duration) time.Duration {
	if c.DisableBlocking {
		return 0
	}
	skew := vtime.WorstCaseSkew(c.Clock, elapsed)
	if c.Variant == Adapted && dirty && !c.DisableContentAdjust {
		return skew + c.MaxDelay
	}
	d := skew - c.MinDelay
	if d < 0 {
		d = 0
	}
	return d
}

// Host is the node-local process the checkpointer serves. The MDCD process
// type satisfies it; the interface keeps the two protocols free of direct
// package coupling, mirroring the paper's "no direct coordination" property.
type Host interface {
	// EffectiveDirty returns the bit write_disk consults (the pseudo
	// dirty bit for P1act).
	EffectiveDirty() bool
	// Snapshot captures the current state as checkpoint contents.
	Snapshot(kind checkpoint.Kind) *checkpoint.Checkpoint
	// LatestVolatile returns the most recent volatile checkpoint (rCKPT).
	LatestVolatile() (*checkpoint.Checkpoint, bool)
	// ReleaseHeld delivers the messages held during the blocking period.
	ReleaseHeld()
}

// Runtime provides time and timers; the simulator and the live middleware
// implement it.
type Runtime interface {
	// Now returns the current true time.
	Now() vtime.Time
	// After schedules fn after d of true time and returns a cancel func.
	After(d time.Duration, fn func()) (cancel func())
}

// Recorder receives trace events (satisfied by trace.Recorder via a closure
// in the coordination layer).
type Recorder func(e trace.Event)
