package tb

import (
	"testing"
	"time"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/sim"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// simRuntime adapts the discrete-event engine to the Runtime interface.
type simRuntime struct{ eng *sim.Engine }

func (r simRuntime) Now() vtime.Time { return r.eng.Now() }

func (r simRuntime) After(d time.Duration, fn func()) func() {
	id := r.eng.After(d, fn)
	return func() { r.eng.Cancel(id) }
}

// fakeHost is a controllable Host.
type fakeHost struct {
	dirty    bool
	step     uint64
	volatile *checkpoint.Checkpoint
	released int
	// unacked mirrors the real MDCD process's UnackedProvider wiring:
	// snapshots embed the live unacknowledged set at capture time.
	unacked func() []msg.Message
}

var _ Host = (*fakeHost)(nil)

func (h *fakeHost) EffectiveDirty() bool { return h.dirty }

func (h *fakeHost) Snapshot(kind checkpoint.Kind) *checkpoint.Checkpoint {
	c := checkpoint.New(kind, msg.P2)
	c.State.Step = h.step
	c.Dirty = h.dirty
	if h.unacked != nil {
		c.Unacked = h.unacked()
	}
	return c
}

func (h *fakeHost) LatestVolatile() (*checkpoint.Checkpoint, bool) {
	if h.volatile == nil {
		return nil, false
	}
	return h.volatile, true
}

func (h *fakeHost) ReleaseHeld() { h.released++ }

func cfgAdapted() Config {
	return Config{
		Variant:  Adapted,
		Interval: 10 * time.Second,
		Clock:    vtime.ClockConfig{MaxDeviation: 10 * time.Millisecond, DriftRate: 1e-5},
		MinDelay: time.Millisecond,
		MaxDelay: 50 * time.Millisecond,
	}
}

func newCP(t *testing.T, cfg Config, host Host) (*sim.Engine, *Checkpointer) {
	t.Helper()
	eng := sim.New(1)
	clock := vtime.NewClock(cfg.Clock, nil)
	cp, err := NewCheckpointer(msg.P2, cfg, clock, simRuntime{eng: eng}, host, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fh, ok := host.(*fakeHost); ok && fh.unacked == nil {
		fh.unacked = cp.UnackedSnapshot
	}
	return eng, cp
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Config)
		wantErr bool
	}{
		{name: "ok", mutate: func(*Config) {}},
		{name: "bad variant", mutate: func(c *Config) { c.Variant = 0 }, wantErr: true},
		{name: "zero interval", mutate: func(c *Config) { c.Interval = 0 }, wantErr: true},
		{name: "bad clock", mutate: func(c *Config) { c.Clock.DriftRate = -1 }, wantErr: true},
		{name: "bad delays", mutate: func(c *Config) { c.MinDelay = 2; c.MaxDelay = 1 }, wantErr: true},
		{name: "bad fraction", mutate: func(c *Config) { c.ResyncFraction = 2 }, wantErr: true},
		{name: "blocking exceeds interval", mutate: func(c *Config) { c.MaxDelay = 11 * time.Second }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := cfgAdapted()
			tt.mutate(&cfg)
			if err := cfg.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestBlockingPeriodFormula(t *testing.T) {
	cfg := cfgAdapted()
	elapsed := 100 * time.Second
	skew := vtime.WorstCaseSkew(cfg.Clock, elapsed)
	tests := []struct {
		name  string
		cfg   Config
		dirty bool
		want  time.Duration
	}{
		{name: "adapted dirty", cfg: cfg, dirty: true, want: skew + cfg.MaxDelay},
		{name: "adapted clean", cfg: cfg, dirty: false, want: skew - cfg.MinDelay},
		{name: "original ignores dirty", cfg: func() Config { c := cfg; c.Variant = Original; return c }(), dirty: true, want: skew - cfg.MinDelay},
		{name: "disabled", cfg: func() Config { c := cfg; c.DisableBlocking = true; return c }(), dirty: true, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.cfg.BlockingPeriod(tt.dirty, elapsed); got != tt.want {
				t.Fatalf("BlockingPeriod = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBlockingPeriodNeverNegative(t *testing.T) {
	cfg := cfgAdapted()
	cfg.MinDelay = time.Second
	cfg.MaxDelay = time.Second
	if got := cfg.BlockingPeriod(false, 0); got != 0 {
		t.Fatalf("BlockingPeriod = %v, want floor at 0", got)
	}
}

func TestCleanProcessCommitsCurrentState(t *testing.T) {
	host := &fakeHost{step: 42}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(25))
	if cp.Ndc() != 2 {
		t.Fatalf("Ndc = %d, want 2 after 25s with Δ=10s", cp.Ndc())
	}
	got, err := cp.LatestStable()
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Step != 42 || got.Dirty {
		t.Fatalf("stable contents = step %d dirty %v", got.State.Step, got.Dirty)
	}
	if host.released != 2 {
		t.Fatalf("ReleaseHeld calls = %d, want 2", host.released)
	}
}

func TestDirtyProcessCommitsVolatileCheckpoint(t *testing.T) {
	vol := checkpoint.New(checkpoint.Type1, msg.P2)
	vol.State.Step = 7
	host := &fakeHost{step: 99, dirty: true, volatile: vol}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12))
	got, err := cp.LatestStable()
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Step != 7 {
		t.Fatalf("stable step = %d, want the volatile checkpoint's 7", got.State.Step)
	}
	if got.Dirty {
		t.Fatal("copied volatile contents are a clean state")
	}
	if got.Kind != checkpoint.Stable {
		t.Fatalf("kind = %v, want stable", got.Kind)
	}
}

func TestOriginalVariantSavesCurrentStateEvenWhenDirty(t *testing.T) {
	cfg := cfgAdapted()
	cfg.Variant = Original
	vol := checkpoint.New(checkpoint.Type1, msg.P2)
	vol.State.Step = 7
	host := &fakeHost{step: 99, dirty: true, volatile: vol}
	eng, cp := newCP(t, cfg, host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12))
	got, err := cp.LatestStable()
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Step != 99 || !got.Dirty {
		t.Fatalf("original variant stable = step %d dirty %v, want current dirty state", got.State.Step, got.Dirty)
	}
}

func TestDirtyFlipDuringBlockingReplacesContents(t *testing.T) {
	vol := checkpoint.New(checkpoint.Type1, msg.P2)
	vol.State.Step = 7
	host := &fakeHost{step: 99, dirty: true, volatile: vol}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()

	// Run just past the timer expiry (10s) into the blocking period.
	eng.RunUntil(vtime.FromSeconds(10).Add(time.Millisecond))
	if !cp.InBlocking() {
		t.Fatal("should be in a blocking period")
	}
	// A passed-AT arrives: the MDCD layer clears the dirty bit and fires
	// the hook.
	host.dirty = false
	cp.NotifyDirtyChanged(false)
	eng.RunUntil(vtime.FromSeconds(12))

	got, err := cp.LatestStable()
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Step != 99 {
		t.Fatalf("stable step = %d, want replaced current state 99", got.State.Step)
	}
	if cp.Stats().Replaces != 1 {
		t.Fatalf("Replaces = %d, want 1", cp.Stats().Replaces)
	}
}

func TestOriginalVariantIgnoresDirtyFlip(t *testing.T) {
	cfg := cfgAdapted()
	cfg.Variant = Original
	host := &fakeHost{step: 99, dirty: true}
	eng, cp := newCP(t, cfg, host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(10).Add(time.Millisecond))
	host.dirty = false
	cp.NotifyDirtyChanged(false)
	if cp.Stats().Replaces != 0 {
		t.Fatal("original variant must not adjust in-flight writes")
	}
}

func TestNoReplaceWhenBitMatchesExpectation(t *testing.T) {
	host := &fakeHost{step: 1, dirty: false}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(10).Add(time.Microsecond))
	cp.NotifyDirtyChanged(false) // no transition
	if cp.Stats().Replaces != 0 {
		t.Fatal("matching bit must not replace")
	}
}

func TestUnackedLifecycle(t *testing.T) {
	host := &fakeHost{}
	eng, cp := newCP(t, cfgAdapted(), host)
	m1 := msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, SN: 1, ChanSeq: 1}
	m2 := msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Sdw, SN: 1, ChanSeq: 1}
	ext := msg.Message{Kind: msg.External, From: msg.P2, To: msg.Device, SN: 2, ChanSeq: 1}
	cp.OnSend(m1)
	cp.OnSend(m2)
	cp.OnSend(ext) // externals are not tracked
	if cp.UnackedLen() != 2 {
		t.Fatalf("UnackedLen = %d, want 2", cp.UnackedLen())
	}
	cp.OnAck(msg.Message{Kind: msg.Ack, From: msg.P1Act, To: msg.P2, AckSN: 1})
	if cp.UnackedLen() != 1 {
		t.Fatalf("UnackedLen after ack = %d, want 1", cp.UnackedLen())
	}
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12))
	got, err := cp.LatestStable()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Unacked) != 1 || got.Unacked[0].To != msg.P1Sdw {
		t.Fatalf("checkpoint unacked = %+v", got.Unacked)
	}
}

func TestPrepareRecoveryRestoresUnackedAndAbandonsWrite(t *testing.T) {
	host := &fakeHost{step: 5}
	eng, cp := newCP(t, cfgAdapted(), host)
	m := msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, SN: 1, ChanSeq: 1}
	cp.OnSend(m)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12)) // checkpoint 1 committed, unacked inside
	cp.OnAck(msg.Message{Kind: msg.Ack, From: msg.P1Act, AckSN: 1})
	if cp.UnackedLen() != 0 {
		t.Fatal("setup: ack should clear live set")
	}
	// Crash mid-blocking of checkpoint 2.
	eng.RunUntil(vtime.FromSeconds(20).Add(time.Millisecond))
	if !cp.Stable.InFlight() {
		t.Fatal("setup: write should be in flight")
	}
	got, err := cp.PrepareRecoveryAt(cp.Ndc())
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Step != 5 {
		t.Fatalf("recovered step = %d", got.State.Step)
	}
	if cp.UnackedLen() != 1 {
		t.Fatalf("unacked restored = %d, want 1 (from checkpoint)", cp.UnackedLen())
	}
	if cp.Stable.InFlight() {
		t.Fatal("in-flight write must be abandoned")
	}
	if cp.InBlocking() {
		t.Fatal("blocking must end on recovery")
	}
}

func TestPrepareRecoveryWithoutCheckpointFails(t *testing.T) {
	host := &fakeHost{}
	_, cp := newCP(t, cfgAdapted(), host)
	if _, err := cp.PrepareRecoveryAt(0); err == nil {
		t.Fatal("recovery at round 0 must error")
	}
}

func TestRecoveryAtPreviousRound(t *testing.T) {
	host := &fakeHost{step: 1}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(12))
	host.step = 2
	eng.RunUntil(vtime.FromSeconds(22))
	if cp.Ndc() != 2 {
		t.Fatalf("setup: Ndc = %d", cp.Ndc())
	}
	// Roll back to round 1 (some peer had not committed round 2).
	got, err := cp.PrepareRecoveryAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if got.State.Step != 1 {
		t.Fatalf("round-1 step = %d, want 1", got.State.Step)
	}
	if cp.Ndc() != 1 {
		t.Fatalf("Ndc after rewind = %d, want 1", cp.Ndc())
	}
	// The discarded round 2 is gone; the next commit is a new round 2.
	cp.Start()
	eng.RunUntil(eng.Now().Add(11 * time.Second))
	if cp.Ndc() != 2 {
		t.Fatalf("Ndc after restart = %d, want 2", cp.Ndc())
	}
}

func TestCommitImmediate(t *testing.T) {
	host := &fakeHost{step: 9}
	_, cp := newCP(t, cfgAdapted(), host)
	if err := cp.CommitImmediate(host.Snapshot(checkpoint.Stable)); err != nil {
		t.Fatal(err)
	}
	if cp.Ndc() != 1 {
		t.Fatalf("Ndc = %d", cp.Ndc())
	}
	got, err := cp.LatestStable()
	if err != nil || got.State.Step != 9 {
		t.Fatalf("LatestStable = %+v, %v", got, err)
	}
}

func TestResyncRequestedWhenSkewGrows(t *testing.T) {
	cfg := cfgAdapted()
	cfg.Clock = vtime.ClockConfig{MaxDeviation: time.Millisecond, DriftRate: 1e-4}
	cfg.ResyncFraction = 0.001 // 10ms of a 10s interval
	host := &fakeHost{}
	eng, cp := newCP(t, cfg, host)
	requests := 0
	cp.OnResyncRequest = func() {
		requests++
		cp.Clock().Resynchronize(eng.Now(), nil)
		cp.NoteResynced()
	}
	cp.Start()
	eng.RunUntil(vtime.FromSeconds(100))
	if requests == 0 {
		t.Fatal("expected at least one resync request")
	}
	if cp.Stats().ResyncRequests != uint64(requests) {
		t.Fatalf("stats mismatch: %d vs %d", cp.Stats().ResyncRequests, requests)
	}
}

func TestStopCancelsTimers(t *testing.T) {
	host := &fakeHost{}
	eng, cp := newCP(t, cfgAdapted(), host)
	cp.Start()
	cp.Stop()
	eng.RunUntil(vtime.FromSeconds(50))
	if cp.Ndc() != 0 {
		t.Fatalf("stopped checkpointer committed %d checkpoints", cp.Ndc())
	}
}

func TestDropUnacked(t *testing.T) {
	host := &fakeHost{}
	_, cp := newCP(t, cfgAdapted(), host)
	cp.OnSend(msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Act, ChanSeq: 1})
	cp.OnSend(msg.Message{Kind: msg.Internal, From: msg.P2, To: msg.P1Sdw, ChanSeq: 1})
	cp.DropUnacked(msg.P1Act)
	if cp.UnackedLen() != 1 {
		t.Fatalf("UnackedLen = %d, want 1", cp.UnackedLen())
	}
}

func TestVariantString(t *testing.T) {
	if Original.String() != "original" || Adapted.String() != "adapted" {
		t.Fatal("variant names wrong")
	}
	if Variant(9).String() != "variant(9)" {
		t.Fatal("unknown variant name wrong")
	}
}
