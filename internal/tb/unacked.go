package tb

import (
	"errors"
	"fmt"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
)

// The TB protocol avoids blocking-for-recoverability by saving every message
// for which no acknowledgement has been received as part of the next stable
// checkpoint; hardware error recovery then re-sends them.

// ErrNoStableCheckpoint is returned when recovery is attempted before any
// stable checkpoint has been committed.
var ErrNoStableCheckpoint = errors.New("tb: no stable checkpoint committed yet")

// OnSend records an outgoing application-purpose message as unacknowledged.
// The coordination layer calls it for every app message handed to the
// interconnect (external messages leave the system and are not tracked).
func (c *Checkpointer) OnSend(m msg.Message) {
	if !m.IsApp() || m.To == msg.Device {
		return
	}
	c.unacked = append(c.unacked, m)
}

// OnAck clears the unacknowledged slot matched by the ack's sender and
// channel sequence number.
func (c *Checkpointer) OnAck(ack msg.Message) {
	for i, m := range c.unacked {
		if m.To == ack.From && m.ChanSeq == ack.AckSN {
			c.unacked = append(c.unacked[:i], c.unacked[i+1:]...)
			return
		}
	}
}

// UnackedSnapshot returns a copy of the unacknowledged messages in send
// order, as stored into stable checkpoints.
func (c *Checkpointer) UnackedSnapshot() []msg.Message {
	if len(c.unacked) == 0 {
		return nil
	}
	out := make([]msg.Message, len(c.unacked))
	copy(out, c.unacked)
	return out
}

// UnackedLen returns the live unacknowledged count.
func (c *Checkpointer) UnackedLen() int { return len(c.unacked) }

// LatestStable returns the last committed stable checkpoint.
func (c *Checkpointer) LatestStable() (*checkpoint.Checkpoint, error) {
	cp, ok, err := c.Stable.Latest()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNoStableCheckpoint
	}
	return cp, nil
}

// PrepareRecoveryAt rewinds the checkpointer for a hardware-fault rollback
// to the given round (the highest round every live process has committed —
// rolling every process back to the same round is what makes the restored
// line consistent; time-based protocols retain the previous checkpoint for
// exactly this reason). Any in-flight write is abandoned (the committed
// checkpoints survive, as a real disk guarantees via shadow paging),
// blocking ends, timers stop, newer rounds are discarded, Ndc rewinds, and
// the live unacknowledged set reverts to the one stored in the returned
// checkpoint. The caller restores the process, re-sends the unacknowledged
// messages, and calls Start.
func (c *Checkpointer) PrepareRecoveryAt(round uint64) (*checkpoint.Checkpoint, error) {
	c.Stop()
	if round == 0 {
		return nil, ErrNoStableCheckpoint
	}
	cp, ok, err := c.Stable.Round(round)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("tb: round %d not retained (latest %d)", round, c.Stable.LatestRound())
	}
	if err := c.Stable.TruncateAbove(round); err != nil {
		return nil, err
	}
	c.ndc = round
	c.unacked = nil
	if len(cp.Unacked) > 0 {
		c.unacked = make([]msg.Message, len(cp.Unacked))
		copy(c.unacked, cp.Unacked)
	}
	return cp, nil
}

// ResumeFromStable aligns the checkpointer with a stable history loaded
// from durable storage (Stable.Load after a node restart): Ndc advances to
// the newest recovered round and the live unacknowledged set reverts to the
// one stored with it — the messages the crashed process had produced but
// never seen acknowledged, which hardware recovery re-sends over the
// reconnect. The caller restores the process from the same checkpoint.
func (c *Checkpointer) ResumeFromStable() (*checkpoint.Checkpoint, error) {
	cp, ok, err := c.Stable.Latest()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrNoStableCheckpoint
	}
	c.ndc = c.Stable.LatestRound()
	c.AdoptUnacked(cp.Unacked)
	return cp, nil
}

// CommitImmediate writes a checkpoint through to stable storage outside the
// timer machinery (the write-through baseline commits on every validation
// event) and advances Ndc.
func (c *Checkpointer) CommitImmediate(cp *checkpoint.Checkpoint) error {
	if err := c.Stable.Begin(cp); err != nil {
		return err
	}
	if err := c.Stable.Commit(c.ndc + 1); err != nil {
		return err
	}
	c.ndc++
	c.stats.Commits++
	return nil
}

// StableAtRound returns the retained checkpoint for the given round.
func (c *Checkpointer) StableAtRound(round uint64) (*checkpoint.Checkpoint, error) {
	cp, ok, err := c.Stable.Round(round)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("tb: round %d not retained", round)
	}
	return cp, nil
}

// AdoptUnacked replaces the live unacknowledged set with the one stored in a
// restored checkpoint, so future stable checkpoints and re-sends are
// relative to the restored state.
func (c *Checkpointer) AdoptUnacked(stored []msg.Message) {
	c.unacked = nil
	if len(stored) > 0 {
		c.unacked = make([]msg.Message, len(stored))
		copy(c.unacked, stored)
	}
}

// ReconcileUnacked prunes unacknowledged entries whose sends were undone by
// a rollback: any entry whose channel sequence exceeds the restored send
// counter for its destination no longer corresponds to a message the current
// state has produced.
func (c *Checkpointer) ReconcileUnacked(sentTo func(to msg.ProcID) uint64) {
	kept := c.unacked[:0]
	for _, m := range c.unacked {
		if m.ChanSeq <= sentTo(m.To) {
			kept = append(kept, m)
		}
	}
	c.unacked = kept
}

// DropUnacked clears the live unacknowledged set (software recovery rewinds
// the component-1 stream through the shadow's log instead).
func (c *Checkpointer) DropUnacked(to msg.ProcID) {
	kept := c.unacked[:0]
	for _, m := range c.unacked {
		if m.To != to {
			kept = append(kept, m)
		}
	}
	c.unacked = kept
}
