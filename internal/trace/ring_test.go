package trace

import (
	"testing"

	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// at builds a distinguishable event: the timestamp doubles as its identity.
func at(i int) Event {
	return Event{At: vtime.Time(i), Proc: msg.P2, Kind: ATPassed}
}

func times(evs []Event) []int {
	out := make([]int, len(evs))
	for i, e := range evs {
		out[i] = int(e.At)
	}
	return out
}

func wantTimes(t *testing.T, evs []Event, want ...int) {
	t.Helper()
	got := times(evs)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRingUnderCapacityKeepsAll(t *testing.T) {
	r := New()
	r.SetCapacity(5)
	for i := 1; i <= 3; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 1, 2, 3)
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New()
	r.SetCapacity(3)
	for i := 1; i <= 7; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 5, 6, 7)
	// The filter helpers must see the reordered view too.
	wantTimes(t, r.ByProc(msg.P2), 5, 6, 7)
	wantTimes(t, r.ByKind(ATPassed), 5, 6, 7)
	if got := r.Count(msg.P2, ATPassed); got != 3 {
		t.Fatalf("Count = %d, want 3", got)
	}
}

func TestRingExactlyFull(t *testing.T) {
	r := New()
	r.SetCapacity(3)
	for i := 1; i <= 3; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 1, 2, 3)
	r.Record(at(4))
	wantTimes(t, r.Events(), 2, 3, 4)
}

func TestSetCapacityMidRunKeepsNewest(t *testing.T) {
	r := New()
	for i := 1; i <= 10; i++ {
		r.Record(at(i))
	}
	r.SetCapacity(4)
	wantTimes(t, r.Events(), 7, 8, 9, 10)
	r.Record(at(11))
	wantTimes(t, r.Events(), 8, 9, 10, 11)
}

func TestSetCapacityGrowKeepsEverything(t *testing.T) {
	r := New()
	r.SetCapacity(2)
	for i := 1; i <= 5; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 4, 5)
	r.SetCapacity(4)
	wantTimes(t, r.Events(), 4, 5)
	for i := 6; i <= 9; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 6, 7, 8, 9)
}

func TestSetCapacityZeroRestoresUnbounded(t *testing.T) {
	r := New()
	r.SetCapacity(2)
	for i := 1; i <= 5; i++ {
		r.Record(at(i))
	}
	r.SetCapacity(0)
	for i := 6; i <= 9; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 4, 5, 6, 7, 8, 9)
}

func TestSetCapacityOnNilRecorder(t *testing.T) {
	var r *Recorder
	r.SetCapacity(4) // must not panic
	r.Record(at(1))
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
}

func TestRingWrapBackToStartZero(t *testing.T) {
	// Exactly 2*cap records puts start back at 0: Events must return the
	// raw slice untouched (it is already in order).
	r := New()
	r.SetCapacity(3)
	for i := 1; i <= 6; i++ {
		r.Record(at(i))
	}
	wantTimes(t, r.Events(), 4, 5, 6)
}
