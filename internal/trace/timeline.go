package trace

import (
	"fmt"
	"strings"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Timeline renders recorded events as per-process ASCII lanes, one column
// per time bucket, in the style of the paper's figures:
//
//	P1act  |--1####A--P####....|
//
// Symbols: '1' Type-1, '2' Type-2, 'P' pseudo checkpoint, 'S' stable commit,
// 'b' blocking-period start, 'e' blocking end, 'A' AT pass, 'X' AT fail,
// '#' potentially contaminated interval, '*' crash, 'R' rollback,
// 'F' roll-forward, 'T' takeover, '!' fault activation, '-' idle.
type Timeline struct {
	// From and To bound the rendered window.
	From, To vtime.Time
	// Columns is the number of time buckets (default 72).
	Columns int
	// Procs lists the lanes in render order (default: the three processes).
	Procs []msg.ProcID
}

// Render draws the timeline for the recorder's events.
func (tl Timeline) Render(r *Recorder) string {
	cols := tl.Columns
	if cols <= 0 {
		cols = 72
	}
	procs := tl.Procs
	if len(procs) == 0 {
		procs = msg.Processes()
	}
	from, to := tl.From, tl.To
	if to <= from {
		for _, e := range r.Events() {
			if e.At > to {
				to = e.At
			}
		}
		if to <= from {
			to = from + 1
		}
	}
	span := float64(to - from)
	col := func(at vtime.Time) int {
		c := int(float64(at-from) / span * float64(cols-1))
		if c < 0 {
			c = 0
		}
		if c >= cols {
			c = cols - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %s window [%s .. %s]\n", "", strings.Repeat(" ", 0), from, to)
	for _, p := range procs {
		lane := make([]byte, cols)
		for i := range lane {
			lane[i] = '-'
		}
		// First pass: shade contaminated intervals so point events
		// drawn later stay visible on top.
		dirtyFrom := -1
		for _, e := range r.ByProc(p) {
			switch e.Kind {
			case DirtySet:
				if dirtyFrom < 0 {
					dirtyFrom = col(e.At)
				}
			case DirtyCleared:
				if dirtyFrom >= 0 {
					shade(lane, dirtyFrom, col(e.At))
					dirtyFrom = -1
				}
			}
		}
		if dirtyFrom >= 0 {
			shade(lane, dirtyFrom, cols-1)
		}
		for _, e := range r.ByProc(p) {
			if sym := symbol(e); sym != 0 {
				lane[col(e.At)] = sym
			}
		}
		fmt.Fprintf(&b, "%-7s|%s|\n", p, lane)
	}
	return b.String()
}

func shade(lane []byte, from, to int) {
	for i := from; i <= to && i < len(lane); i++ {
		lane[i] = '#'
	}
}

func symbol(e Event) byte {
	switch e.Kind {
	case CheckpointTaken:
		switch e.Ckpt {
		case checkpoint.Type1:
			return '1'
		case checkpoint.Type2:
			return '2'
		case checkpoint.Pseudo:
			return 'P'
		}
		return 'C'
	case StableCommitted:
		return 'S'
	case BlockStarted:
		return 'b'
	case BlockEnded:
		return 'e'
	case ATPassed:
		return 'A'
	case ATFailed:
		return 'X'
	case NodeCrashed:
		return '*'
	case RolledBack:
		return 'R'
	case RolledForward:
		return 'F'
	case TookOver:
		return 'T'
	case FaultActivated:
		return '!'
	default:
		return 0
	}
}
