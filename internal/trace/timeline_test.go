package trace

import (
	"strings"
	"testing"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// lane extracts the rendered lane body (between the pipes) for one process.
func lane(t *testing.T, out string, p msg.ProcID) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, p.String()) {
			continue
		}
		open := strings.IndexByte(line, '|')
		close := strings.LastIndexByte(line, '|')
		if open < 0 || close <= open {
			t.Fatalf("lane for %v has no pipes: %q", p, line)
		}
		return line[open+1 : close]
	}
	t.Fatalf("no lane for %v in:\n%s", p, out)
	return ""
}

func TestTimelineFullSymbolSet(t *testing.T) {
	r := New()
	sec := vtime.FromSeconds
	for i, ev := range []Event{
		{Kind: CheckpointTaken, Ckpt: checkpoint.Type1},
		{Kind: CheckpointTaken, Ckpt: checkpoint.Type2},
		{Kind: CheckpointTaken, Ckpt: checkpoint.Pseudo},
		{Kind: StableCommitted, Ckpt: checkpoint.Stable},
		{Kind: BlockStarted},
		{Kind: BlockEnded},
		{Kind: ATPassed},
		{Kind: ATFailed},
		{Kind: NodeCrashed},
		{Kind: RolledBack},
		{Kind: RolledForward},
		{Kind: TookOver},
		{Kind: FaultActivated},
	} {
		ev.At = sec(float64(i + 1))
		ev.Proc = msg.P2
		r.Record(ev)
	}
	out := Timeline{From: vtime.Zero, To: sec(14), Columns: 56, Procs: []msg.ProcID{msg.P2}}.Render(r)
	body := lane(t, out, msg.P2)
	for _, sym := range []string{"1", "2", "P", "S", "b", "e", "A", "X", "*", "R", "F", "T", "!"} {
		if !strings.Contains(body, sym) {
			t.Errorf("lane missing symbol %q:\n%s", sym, out)
		}
	}
}

func TestTimelineUnknownCheckpointKindRendersC(t *testing.T) {
	r := New()
	r.Record(Event{At: vtime.FromSeconds(1), Proc: msg.P2, Kind: CheckpointTaken, Ckpt: checkpoint.Kind(99)})
	out := Timeline{From: vtime.Zero, To: vtime.FromSeconds(2), Columns: 10, Procs: []msg.ProcID{msg.P2}}.Render(r)
	if !strings.Contains(lane(t, out, msg.P2), "C") {
		t.Fatalf("unknown checkpoint kind should render 'C':\n%s", out)
	}
}

func TestTimelineNonSymbolEventsLeaveLaneIdle(t *testing.T) {
	r := New()
	r.Record(Event{At: vtime.FromSeconds(1), Proc: msg.P2, Kind: MsgSent})
	r.Record(Event{At: vtime.FromSeconds(2), Proc: msg.P2, Kind: MsgDelivered})
	r.Record(Event{At: vtime.FromSeconds(3), Proc: msg.P2, Kind: Resynced})
	out := Timeline{From: vtime.Zero, To: vtime.FromSeconds(4), Columns: 12, Procs: []msg.ProcID{msg.P2}}.Render(r)
	if body := lane(t, out, msg.P2); body != strings.Repeat("-", 12) {
		t.Fatalf("sends/delivers/resyncs should not mark the lane, got %q", body)
	}
}

func TestTimelineClampsOutOfWindowEvents(t *testing.T) {
	r := New()
	r.Record(Event{At: vtime.Zero, Proc: msg.P2, Kind: ATPassed})                // before window
	r.Record(Event{At: vtime.FromSeconds(100), Proc: msg.P2, Kind: NodeCrashed}) // after window
	out := Timeline{From: vtime.FromSeconds(10), To: vtime.FromSeconds(20), Columns: 10, Procs: []msg.ProcID{msg.P2}}.Render(r)
	body := lane(t, out, msg.P2)
	if body[0] != 'A' {
		t.Fatalf("early event should clamp to first column, got %q", body)
	}
	if body[len(body)-1] != '*' {
		t.Fatalf("late event should clamp to last column, got %q", body)
	}
}

func TestTimelineDefaultColumnsAndProcs(t *testing.T) {
	out := Timeline{From: vtime.Zero, To: vtime.FromSeconds(1)}.Render(New())
	for _, p := range msg.Processes() {
		if body := lane(t, out, p); len(body) != 72 {
			t.Fatalf("default lane width = %d, want 72", len(body))
		}
	}
}

func TestTimelineContaminationShadedUnderPointEvents(t *testing.T) {
	// A checkpoint inside a dirty interval must stay visible on top of the
	// shading, with '#' on both sides.
	r := New()
	sec := vtime.FromSeconds
	r.Record(Event{At: sec(2), Proc: msg.P2, Kind: DirtySet})
	r.Record(Event{At: sec(5), Proc: msg.P2, Kind: CheckpointTaken, Ckpt: checkpoint.Type2})
	r.Record(Event{At: sec(8), Proc: msg.P2, Kind: DirtyCleared})
	out := Timeline{From: vtime.Zero, To: sec(10), Columns: 20, Procs: []msg.ProcID{msg.P2}}.Render(r)
	body := lane(t, out, msg.P2)
	i := strings.IndexByte(body, '2')
	if i < 0 {
		t.Fatalf("checkpoint hidden by shading: %q", body)
	}
	if body[i-1] != '#' || body[i+1] != '#' {
		t.Fatalf("checkpoint not embedded in contamination shading: %q", body)
	}
}

func TestTimelineRendersRingTail(t *testing.T) {
	// A bounded recorder renders whatever survived — the newest events.
	r := New()
	r.SetCapacity(2)
	sec := vtime.FromSeconds
	r.Record(Event{At: sec(1), Proc: msg.P2, Kind: ATFailed})
	r.Record(Event{At: sec(5), Proc: msg.P2, Kind: ATPassed})
	r.Record(Event{At: sec(9), Proc: msg.P2, Kind: TookOver})
	out := Timeline{From: vtime.Zero, To: sec(10), Columns: 20, Procs: []msg.ProcID{msg.P2}}.Render(r)
	body := lane(t, out, msg.P2)
	if strings.Contains(body, "X") {
		t.Fatalf("evicted event still rendered: %q", body)
	}
	for _, sym := range []string{"A", "T"} {
		if !strings.Contains(body, sym) {
			t.Fatalf("retained event %q missing: %q", sym, body)
		}
	}
}
