// Package trace records protocol events during a run and renders them as
// per-process ASCII timelines — the same diagrams the paper uses in Figures
// 1, 3, 4 and 6 (checkpoint establishments, contamination intervals,
// acceptance tests, blocking periods).
package trace

import (
	"fmt"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Kind classifies trace events.
type Kind uint8

// Trace event kinds.
const (
	// CheckpointTaken records a volatile checkpoint establishment.
	CheckpointTaken Kind = iota + 1
	// MsgSent records an outgoing application-purpose message.
	MsgSent
	// MsgDelivered records a message passed to the application.
	MsgDelivered
	// ATPassed records a successful acceptance test.
	ATPassed
	// ATFailed records a failed acceptance test (software error detected).
	ATFailed
	// DirtySet records a dirty (or pseudo dirty) bit transition to 1.
	DirtySet
	// DirtyCleared records a dirty (or pseudo dirty) bit transition to 0.
	DirtyCleared
	// BlockStarted records the start of a TB blocking period.
	BlockStarted
	// BlockEnded records the end of a TB blocking period.
	BlockEnded
	// StableBegun records the start of a stable checkpoint write.
	StableBegun
	// StableReplaced records an abort-and-replace of the write contents.
	StableReplaced
	// StableCommitted records a durable stable checkpoint.
	StableCommitted
	// NodeCrashed records a hardware fault.
	NodeCrashed
	// RolledBack records a rollback during recovery.
	RolledBack
	// RolledForward records a roll-forward decision during recovery.
	RolledForward
	// TookOver records the shadow assuming the active role.
	TookOver
	// FaultActivated records a software design-fault activation.
	FaultActivated
	// Resynced records a timer resynchronization.
	Resynced
	// NodeRestarted records a crashed node rebooting from durable
	// stable storage.
	NodeRestarted
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := map[Kind]string{
		CheckpointTaken: "checkpoint",
		MsgSent:         "send",
		MsgDelivered:    "deliver",
		ATPassed:        "AT-pass",
		ATFailed:        "AT-fail",
		DirtySet:        "dirty=1",
		DirtyCleared:    "dirty=0",
		BlockStarted:    "block-start",
		BlockEnded:      "block-end",
		StableBegun:     "stable-begin",
		StableReplaced:  "stable-replace",
		StableCommitted: "stable-commit",
		NodeCrashed:     "crash",
		RolledBack:      "rollback",
		RolledForward:   "roll-forward",
		TookOver:        "takeover",
		FaultActivated:  "fault",
		Resynced:        "resync",
		NodeRestarted:   "restart",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one recorded protocol occurrence.
type Event struct {
	// At is the true time of the event.
	At vtime.Time
	// Proc is the process the event belongs to.
	Proc msg.ProcID
	// Kind classifies the event.
	Kind Kind
	// Ckpt is the checkpoint kind for CheckpointTaken/Stable* events.
	Ckpt checkpoint.Kind
	// Msg is the message for MsgSent/MsgDelivered events.
	Msg msg.Message
	// Note carries free-form detail.
	Note string
}

// String renders the event for logs.
func (e Event) String() string {
	s := fmt.Sprintf("%s %s %s", e.At, e.Proc, e.Kind)
	if e.Kind == CheckpointTaken || e.Kind == StableCommitted || e.Kind == StableBegun {
		s += " " + e.Ckpt.String()
	}
	if e.Note != "" {
		s += " (" + e.Note + ")"
	}
	return s
}

// Recorder accumulates events. A nil *Recorder is valid and records nothing,
// so tracing can be disabled with zero overhead in hot experiment loops.
//
// By default the recorder grows without bound — the simulator's runs are
// finite and tests assert on complete histories. Long live/chaos runs call
// SetCapacity to turn it into a ring buffer that retains only the newest
// events (a post-mortem tail is what a failure dump needs anyway).
type Recorder struct {
	events []Event
	// cap, when > 0, bounds events as a ring; start is the ring's oldest
	// element once it has wrapped.
	cap     int
	start   int
	wrapped bool
}

// New returns an empty, unbounded recorder.
func New() *Recorder { return &Recorder{} }

// SetCapacity bounds the recorder to the newest n events (n <= 0 restores
// unbounded growth). Calling it mid-run keeps the newest events already
// recorded.
func (r *Recorder) SetCapacity(n int) {
	if r == nil {
		return
	}
	evs := r.Events()
	r.cap = 0
	r.start = 0
	r.wrapped = false
	if n <= 0 {
		r.events = evs
		return
	}
	r.cap = n
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	r.events = append([]Event(nil), evs...)
	if len(r.events) == r.cap {
		r.wrapped = true
	}
}

// Record appends an event. No-op on a nil recorder. With a capacity set, the
// oldest event is overwritten once the ring is full.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	if r.cap <= 0 {
		r.events = append(r.events, e)
		return
	}
	if len(r.events) < r.cap {
		r.events = append(r.events, e)
		if len(r.events) == r.cap {
			r.wrapped = true
		}
		return
	}
	r.events[r.start] = e
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
}

// Events returns the recorded events in order (for a wrapped ring, the
// retained newest events, oldest first).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.cap <= 0 || !r.wrapped || r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// ByProc returns the events of one process, preserving order.
func (r *Recorder) ByProc(p msg.ProcID) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Proc == p {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the events of one kind, preserving order.
func (r *Recorder) ByKind(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of kind k process p recorded.
func (r *Recorder) Count(p msg.ProcID, k Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Proc == p && e.Kind == k {
			n++
		}
	}
	return n
}
