package trace

import (
	"strings"
	"testing"

	"github.com/synergy-ft/synergy/internal/checkpoint"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/vtime"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: ATPassed})
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder returned events: %v", got)
	}
	if got := r.Count(msg.P2, ATPassed); got != 0 {
		t.Fatalf("nil recorder Count = %d", got)
	}
}

func TestRecordAndFilter(t *testing.T) {
	r := New()
	r.Record(Event{At: 1, Proc: msg.P1Act, Kind: ATPassed})
	r.Record(Event{At: 2, Proc: msg.P2, Kind: ATPassed})
	r.Record(Event{At: 3, Proc: msg.P1Act, Kind: DirtySet})
	if got := len(r.Events()); got != 3 {
		t.Fatalf("Events = %d", got)
	}
	if got := len(r.ByProc(msg.P1Act)); got != 2 {
		t.Fatalf("ByProc = %d", got)
	}
	if got := len(r.ByKind(ATPassed)); got != 2 {
		t.Fatalf("ByKind = %d", got)
	}
	if got := r.Count(msg.P1Act, ATPassed); got != 1 {
		t.Fatalf("Count = %d", got)
	}
}

func TestKindStrings(t *testing.T) {
	for k := CheckpointTaken; k <= Resynced; k++ {
		if strings.HasPrefix(k.String(), "event(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if got := Kind(200).String(); got != "event(200)" {
		t.Fatalf("unknown kind String = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At:   vtime.FromSeconds(1),
		Proc: msg.P2,
		Kind: CheckpointTaken,
		Ckpt: checkpoint.Type1,
		Note: "before contamination",
	}
	got := e.String()
	for _, want := range []string{"P2", "checkpoint", "type-1", "before contamination"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}

func TestTimelineSymbols(t *testing.T) {
	r := New()
	r.Record(Event{At: vtime.FromSeconds(1), Proc: msg.P2, Kind: CheckpointTaken, Ckpt: checkpoint.Type1})
	r.Record(Event{At: vtime.FromSeconds(2), Proc: msg.P2, Kind: DirtySet})
	r.Record(Event{At: vtime.FromSeconds(5), Proc: msg.P2, Kind: DirtyCleared})
	r.Record(Event{At: vtime.FromSeconds(5), Proc: msg.P2, Kind: ATPassed})
	r.Record(Event{At: vtime.FromSeconds(7), Proc: msg.P1Act, Kind: CheckpointTaken, Ckpt: checkpoint.Pseudo})
	r.Record(Event{At: vtime.FromSeconds(8), Proc: msg.P1Sdw, Kind: StableCommitted, Ckpt: checkpoint.Stable})

	out := Timeline{From: vtime.Zero, To: vtime.FromSeconds(10), Columns: 40}.Render(r)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + three lanes
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	p2 := lines[3] // lanes in Processes() order: P1act, P1sdw, P2
	if !strings.HasPrefix(p2, "P2") {
		t.Fatalf("unexpected lane order:\n%s", out)
	}
	for _, want := range []string{"1", "#", "A"} {
		if !strings.Contains(p2, want) {
			t.Fatalf("P2 lane missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(lines[1], "P") {
		t.Fatalf("P1act lane missing pseudo checkpoint:\n%s", out)
	}
	if !strings.Contains(lines[2], "S") {
		t.Fatalf("P1sdw lane missing stable commit:\n%s", out)
	}
}

func TestTimelineOpenDirtyIntervalShadesToEnd(t *testing.T) {
	r := New()
	r.Record(Event{At: vtime.FromSeconds(5), Proc: msg.P2, Kind: DirtySet})
	out := Timeline{From: vtime.Zero, To: vtime.FromSeconds(10), Columns: 20, Procs: []msg.ProcID{msg.P2}}.Render(r)
	if !strings.HasSuffix(strings.TrimRight(out, "\n"), "#|") {
		t.Fatalf("open contamination should shade to window end:\n%s", out)
	}
}

func TestTimelineAutoWindow(t *testing.T) {
	r := New()
	r.Record(Event{At: vtime.FromSeconds(3), Proc: msg.P2, Kind: ATPassed})
	out := Timeline{Columns: 10, Procs: []msg.ProcID{msg.P2}}.Render(r)
	if !strings.Contains(out, "A") {
		t.Fatalf("auto-window render lost the event:\n%s", out)
	}
}

func TestTimelineEmptyRecorder(t *testing.T) {
	out := Timeline{Columns: 10}.Render(New())
	if !strings.Contains(out, "P1act") {
		t.Fatalf("empty render should still show lanes:\n%s", out)
	}
}
