package vtime

import (
	"fmt"
	"math/rand"
	"time"
)

// ClockConfig bounds the behaviour of every local clock in the system. These
// are the δ and ρ parameters of the time-based checkpointing protocol: right
// after a resynchronization two clocks differ by at most MaxDeviation, and
// between resynchronizations each clock drifts away from true time at a rate
// of at most DriftRate seconds per second.
type ClockConfig struct {
	// MaxDeviation (δ) is the maximum deviation between any two clocks
	// immediately after a (re)synchronization. Each individual clock is
	// therefore kept within ±δ/2 of true time at resynchronization, so
	// that the protocol bound δ + 2ρτ on mutual skew holds.
	MaxDeviation time.Duration
	// DriftRate (ρ) is the maximum absolute drift, in seconds of clock
	// error per second of true time.
	DriftRate float64
}

// Validate reports whether the configuration is physically meaningful.
func (c ClockConfig) Validate() error {
	if c.MaxDeviation < 0 {
		return fmt.Errorf("vtime: negative MaxDeviation %v", c.MaxDeviation)
	}
	if c.DriftRate < 0 || c.DriftRate >= 1 {
		return fmt.Errorf("vtime: drift rate %v outside [0,1)", c.DriftRate)
	}
	return nil
}

// Clock models one node's local clock. Its reading at true time t is
//
//	reading(t) = t + offset + drift·(t − syncedAt)
//
// where |offset| ≤ δ is redrawn on every resynchronization and |drift| ≤ ρ is
// a fixed property of the node's oscillator.
type Clock struct {
	cfg      ClockConfig
	offset   time.Duration
	drift    float64
	syncedAt Time
}

// NewClock creates a clock whose offset and drift are drawn uniformly from
// [−δ/2, δ/2] and [−ρ, ρ] using rng. A nil rng yields a perfect clock.
func NewClock(cfg ClockConfig, rng *rand.Rand) *Clock {
	c := &Clock{cfg: cfg}
	if rng != nil {
		c.offset = randDeviation(cfg.MaxDeviation, rng)
		c.drift = randDrift(cfg.DriftRate, rng)
	}
	return c
}

// Config returns the bounds the clock was created with.
func (c *Clock) Config() ClockConfig { return c.cfg }

// Read returns the clock's reading at true time t.
func (c *Clock) Read(t Time) Time {
	elapsed := t.Sub(c.syncedAt)
	err := c.offset + time.Duration(c.drift*float64(elapsed))
	return t.Add(err)
}

// WhenReads returns the true time at which the clock will read local. If the
// clock already reads at or past local at true time `from`, it returns from.
func (c *Clock) WhenReads(local, from Time) Time {
	if !c.Read(from).Before(local) {
		return from
	}
	// Solve local = t + offset + drift·(t − syncedAt) for t.
	// t·(1+drift) = local − offset + drift·syncedAt
	num := float64(local) - float64(c.offset) + c.drift*float64(c.syncedAt)
	t := Time(num / (1 + c.drift))
	// Guard against floating-point rounding leaving the reading short.
	for c.Read(t).Before(local) {
		t++
	}
	return Max(t, from)
}

// Resynchronize re-aligns the clock with true time at instant t, redrawing the
// residual offset within [−δ/2, δ/2]. The drift rate is a hardware property
// and is retained. A nil rng resets the offset to zero.
func (c *Clock) Resynchronize(t Time, rng *rand.Rand) {
	c.syncedAt = t
	if rng == nil {
		c.offset = 0
		return
	}
	c.offset = randDeviation(c.cfg.MaxDeviation, rng)
}

// Error returns the signed difference between the clock reading and true time
// at instant t.
func (c *Clock) Error(t Time) time.Duration { return c.Read(t).Sub(t) }

// WorstCaseSkew returns the protocol's bound on the mutual deviation between
// any two clocks after elapsed τ since the last resynchronization: δ + 2ρτ.
func WorstCaseSkew(cfg ClockConfig, elapsed time.Duration) time.Duration {
	return cfg.MaxDeviation + time.Duration(2*cfg.DriftRate*float64(elapsed))
}

func randDeviation(max time.Duration, rng *rand.Rand) time.Duration {
	if max == 0 {
		return 0
	}
	half := max / 2
	return time.Duration(rng.Int63n(int64(2*half)+1)) - half
}

func randDrift(max float64, rng *rand.Rand) float64 {
	if max == 0 {
		return 0
	}
	return (2*rng.Float64() - 1) * max
}
