package vtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeArithmetic(t *testing.T) {
	tests := []struct {
		name string
		give Time
		add  time.Duration
		want Time
	}{
		{name: "zero plus second", give: Zero, add: time.Second, want: Time(time.Second)},
		{name: "negative delta", give: FromSeconds(2), add: -time.Second, want: FromSeconds(1)},
		{name: "no-op", give: FromSeconds(5), add: 0, want: FromSeconds(5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.Add(tt.add); got != tt.want {
				t.Fatalf("Add(%v) = %v, want %v", tt.add, got, tt.want)
			}
		})
	}
}

func TestTimeSub(t *testing.T) {
	a, b := FromSeconds(3), FromSeconds(1)
	if got := a.Sub(b); got != 2*time.Second {
		t.Fatalf("Sub = %v, want 2s", got)
	}
	if got := b.Sub(a); got != -2*time.Second {
		t.Fatalf("Sub = %v, want -2s", got)
	}
}

func TestTimeOrdering(t *testing.T) {
	if !Zero.Before(Never) {
		t.Fatal("Zero should be before Never")
	}
	if !Never.After(Zero) {
		t.Fatal("Never should be after Zero")
	}
	if Min(FromSeconds(1), FromSeconds(2)) != FromSeconds(1) {
		t.Fatal("Min wrong")
	}
	if Max(FromSeconds(1), FromSeconds(2)) != FromSeconds(2) {
		t.Fatal("Max wrong")
	}
}

func TestTimeString(t *testing.T) {
	if got := FromSeconds(12.3456).String(); got != "12.346s" {
		t.Fatalf("String = %q", got)
	}
}

func TestClockConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    ClockConfig
		wantErr bool
	}{
		{name: "ok", give: ClockConfig{MaxDeviation: time.Millisecond, DriftRate: 1e-5}},
		{name: "zero", give: ClockConfig{}},
		{name: "negative deviation", give: ClockConfig{MaxDeviation: -1}, wantErr: true},
		{name: "negative drift", give: ClockConfig{DriftRate: -0.1}, wantErr: true},
		{name: "drift too large", give: ClockConfig{DriftRate: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestPerfectClockTracksTrueTime(t *testing.T) {
	c := NewClock(ClockConfig{}, nil)
	for _, at := range []Time{Zero, FromSeconds(1), FromSeconds(1000)} {
		if got := c.Read(at); got != at {
			t.Fatalf("Read(%v) = %v, want exact", at, got)
		}
	}
}

func TestClockDeviationBounded(t *testing.T) {
	cfg := ClockConfig{MaxDeviation: 5 * time.Millisecond, DriftRate: 1e-4}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		c := NewClock(cfg, rng)
		if e := c.Error(Zero); e > cfg.MaxDeviation/2 || e < -cfg.MaxDeviation/2 {
			t.Fatalf("initial error %v exceeds δ/2=%v", e, cfg.MaxDeviation/2)
		}
		// After 100s, error bounded by δ/2 + ρ·τ.
		at := FromSeconds(100)
		bound := cfg.MaxDeviation/2 + time.Duration(cfg.DriftRate*float64(at.Sub(Zero)))
		if e := c.Error(at); e > bound || e < -bound {
			t.Fatalf("error %v at %v exceeds bound %v", e, at, bound)
		}
	}
}

func TestClockResynchronize(t *testing.T) {
	cfg := ClockConfig{MaxDeviation: time.Millisecond, DriftRate: 1e-3}
	rng := rand.New(rand.NewSource(7))
	c := NewClock(cfg, rng)
	at := FromSeconds(500)
	c.Resynchronize(at, rng)
	if e := c.Error(at); e > cfg.MaxDeviation/2 || e < -cfg.MaxDeviation/2 {
		t.Fatalf("post-resync error %v exceeds δ/2", e)
	}
	c.Resynchronize(at, nil)
	if e := c.Error(at); e != 0 {
		t.Fatalf("nil-rng resync should zero the offset, got %v", e)
	}
}

func TestWhenReadsInvertsRead(t *testing.T) {
	cfg := ClockConfig{MaxDeviation: 10 * time.Millisecond, DriftRate: 5e-4}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		c := NewClock(cfg, rng)
		local := FromSeconds(float64(1 + rng.Intn(1000)))
		tt := c.WhenReads(local, Zero)
		if c.Read(tt).Before(local) {
			t.Fatalf("clock reads %v at %v, before target %v", c.Read(tt), tt, local)
		}
		if tt.After(Zero) && !c.Read(tt-1).Before(local) {
			t.Fatalf("WhenReads not minimal: reading at %v already %v", tt-1, c.Read(tt-1))
		}
	}
}

func TestWhenReadsAlreadyPast(t *testing.T) {
	c := NewClock(ClockConfig{}, nil)
	from := FromSeconds(10)
	if got := c.WhenReads(FromSeconds(5), from); got != from {
		t.Fatalf("WhenReads past target = %v, want from=%v", got, from)
	}
}

func TestWorstCaseSkew(t *testing.T) {
	cfg := ClockConfig{MaxDeviation: time.Millisecond, DriftRate: 1e-5}
	got := WorstCaseSkew(cfg, 100*time.Second)
	want := time.Millisecond + 2*time.Millisecond
	if got != want {
		t.Fatalf("WorstCaseSkew = %v, want %v", got, want)
	}
}

// Property: mutual skew between any two clocks never exceeds δ + 2ρτ (both
// clocks resynced at 0) — the bound the TB protocol's blocking periods rely on.
func TestMutualSkewBoundProperty(t *testing.T) {
	cfg := ClockConfig{MaxDeviation: 3 * time.Millisecond, DriftRate: 2e-4}
	rng := rand.New(rand.NewSource(1234))
	f := func(elapsedMillis uint16) bool {
		a := NewClock(cfg, rng)
		b := NewClock(cfg, rng)
		at := Zero.Add(time.Duration(elapsedMillis) * time.Millisecond)
		skew := a.Read(at).Sub(b.Read(at))
		if skew < 0 {
			skew = -skew
		}
		// Protocol bound on mutual skew: δ + 2ρτ. Each offset lies within
		// ±δ/2, so mutual offsets are within δ.
		bound := WorstCaseSkew(cfg, at.Sub(Zero))
		return skew <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
