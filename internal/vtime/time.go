// Package vtime provides the virtual-time primitives used by the
// discrete-event simulator: an absolute simulated time type and a model of
// imperfectly synchronized, drifting local clocks that can be periodically
// resynchronized, matching the clock assumptions of time-based checkpointing
// protocols (maximum initial deviation δ and maximum drift rate ρ).
package vtime

import (
	"fmt"
	"time"
)

// Time is an absolute instant of simulated ("true") time, measured in
// nanoseconds since the start of the simulation. It is distinct from any
// process-local clock reading (see Clock).
type Time int64

// Common reference instants.
const (
	// Zero is the start of simulated time.
	Zero Time = 0
	// Never is a sentinel that compares after every reachable instant.
	Never Time = 1<<63 - 1
)

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t expressed as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// FromSeconds converts a number of seconds into an absolute instant.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// String renders the instant as seconds with millisecond precision, e.g.
// "12.345s", which keeps traces readable.
func (t Time) String() string {
	return fmt.Sprintf("%.3fs", t.Seconds())
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
