package synergy

import (
	"time"

	"github.com/synergy-ft/synergy/internal/chaos"
	"github.com/synergy-ft/synergy/internal/live"
	"github.com/synergy-ft/synergy/internal/mdcd"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/obs"
	"github.com/synergy-ft/synergy/internal/tb"
)

// MiddlewareConfig assembles a live (goroutine/real-timer) instance of the
// coordinated scheme — the paper's GSU Middleware prototype. Durations are
// wall-clock.
type MiddlewareConfig struct {
	// Seed drives workload and AT randomness.
	Seed int64
	// CheckpointInterval is the TB interval Δ (default 100ms).
	CheckpointInterval time.Duration
	// MinDelay and MaxDelay bound message delivery (defaults 200µs, 2ms).
	MinDelay, MaxDelay time.Duration
	// InternalRate and ExternalRate drive both components' traffic in
	// messages per second (defaults 50 and 5).
	InternalRate, ExternalRate float64
	// UseTCP runs the interconnect over loopback TCP sockets (one
	// listener per node, one connection per directed channel) instead of
	// in-process channels.
	UseTCP bool
	// StableDir, when non-empty, backs each node's stable storage with a
	// durable on-disk log, so nodes can be killed and restarted from
	// their committed checkpoints (see KillNode/RestartNode).
	StableDir string
	// Chaos injects transport faults and crash-restart schedules into
	// the run (frame-level faults require UseTCP; crash schedules require
	// StableDir).
	Chaos chaos.Spec
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the run's
	// metrics registry over HTTP on that address: Prometheus text
	// exposition at /metrics, a JSON snapshot at /metrics.json, and
	// net/http/pprof under /debug/pprof/. Empty disables instrumentation
	// entirely.
	MetricsAddr string
	// TraceCapacity, when > 0, bounds the protocol trace recorder to the
	// newest events (a ring buffer) so long runs don't grow memory without
	// limit. Zero keeps the full history.
	TraceCapacity int
}

// Middleware runs the coordinated protocols under real concurrency.
type Middleware struct {
	inner *live.Middleware
	msrv  *obs.Server
}

// NewMiddleware assembles a live middleware instance.
func NewMiddleware(cfg MiddlewareConfig) (*Middleware, error) {
	c := live.DefaultConfig(cfg.Seed)
	if cfg.CheckpointInterval > 0 {
		c.CheckpointInterval = cfg.CheckpointInterval
	}
	if cfg.MinDelay > 0 {
		c.MinDelay = cfg.MinDelay
	}
	if cfg.MaxDelay > 0 {
		c.MaxDelay = cfg.MaxDelay
	}
	if cfg.InternalRate > 0 {
		c.Workload1.InternalRate = cfg.InternalRate
		c.Workload2.InternalRate = cfg.InternalRate
	}
	if cfg.ExternalRate > 0 {
		c.Workload1.ExternalRate = cfg.ExternalRate
		c.Workload2.ExternalRate = cfg.ExternalRate
	}
	if cfg.UseTCP {
		c.Net = live.TCPTransport
	}
	c.StableDir = cfg.StableDir
	c.Chaos = cfg.Chaos
	c.TraceCapacity = cfg.TraceCapacity
	var msrv *obs.Server
	if cfg.MetricsAddr != "" {
		reg := obs.NewRegistry()
		srv, err := obs.NewServer(cfg.MetricsAddr, reg)
		if err != nil {
			return nil, err
		}
		c.Obs = reg
		msrv = srv
	}
	inner, err := live.New(c)
	if err != nil {
		if msrv != nil {
			msrv.Close()
		}
		return nil, err
	}
	return &Middleware{inner: inner, msrv: msrv}, nil
}

// MetricsAddr returns the bound metrics-server address (empty when metrics
// are disabled). With a ":0" config address this is where the OS actually
// put the listener.
func (m *Middleware) MetricsAddr() string {
	if m.msrv == nil {
		return ""
	}
	return m.msrv.Addr()
}

// Start launches timers and workload goroutines.
func (m *Middleware) Start() { m.inner.Start() }

// Stop halts the middleware (and its metrics server); it is idempotent.
func (m *Middleware) Stop() {
	m.inner.Stop()
	if m.msrv != nil {
		m.msrv.Close()
	}
}

// Run drives the middleware for the given wall duration, then stops it.
func (m *Middleware) Run(d time.Duration) { m.inner.Run(d) }

// ActivateSoftwareFault triggers the design fault in the active process.
func (m *Middleware) ActivateSoftwareFault() { m.inner.ActivateSoftwareFault() }

// CommitUpgrade accepts the upgraded version and disengages guarded
// operation (see System.CommitUpgrade).
func (m *Middleware) CommitUpgrade() bool { return m.inner.CommitUpgrade() }

// InjectHardwareFault crashes the node hosting the given process.
func (m *Middleware) InjectHardwareFault(p Process) error {
	return m.inner.InjectHardwareFault(msg.ProcID(p))
}

// KillNode crashes a node's host: volatile state is lost and its transport
// connections are severed until RestartNode (requires StableDir so the
// node's committed rounds survive on disk).
func (m *Middleware) KillNode(p Process) error {
	return m.inner.KillNode(msg.ProcID(p))
}

// RestartNode reboots a killed node from its durable stable checkpoints and
// runs a system-wide hardware recovery so it rejoins a consistent line.
func (m *Middleware) RestartNode(p Process) error {
	return m.inner.RestartNode(msg.ProcID(p))
}

// ChaosStats returns the chaos injector's fault counters (zero without a
// scenario).
func (m *Middleware) ChaosStats() chaos.Stats { return m.inner.ChaosStats() }

// Report summarizes the run so far.
func (m *Middleware) Report() Report {
	met := m.inner.Metrics()
	r := Report{
		HardwareFaults:      met.HWFaults,
		SoftwareRecoveries:  met.SWRecoveries,
		MeanRollbackSeconds: met.RollbackDistance.Mean(),
		MaxRollbackSeconds:  met.RollbackDistance.Max(),
	}
	_ = m.inner.Inspect(msg.P1Sdw, func(p *mdcd.Process, _ *tb.Checkpointer) {
		r.ShadowPromoted = p.Promoted()
	})
	if failed, why := m.inner.Failure(); failed {
		r.Failed = why
	}
	return r
}

// StableRounds returns the committed stable checkpoint rounds per process.
func (m *Middleware) StableRounds(p Process) uint64 {
	var ndc uint64
	_ = m.inner.Inspect(msg.ProcID(p), func(_ *mdcd.Process, cp *tb.Checkpointer) { ndc = cp.Ndc() })
	return ndc
}
