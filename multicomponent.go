package synergy

import (
	"time"

	"github.com/synergy-ft/synergy/internal/at"
	"github.com/synergy-ft/synergy/internal/gmdcd"
)

// The generalized protocol (the paper's reference [5] direction): guarded
// operation for arbitrary component counts and communication topologies,
// with per-origin confidence tracking instead of a single dirty bit. This
// reproduces the extension at the error-containment layer (volatile
// checkpoints, software fault tolerance); its coordination with stable-
// storage checkpointing is future work in the paper.

// Component declares one application component of a multi-component system.
type Component struct {
	// Name identifies the component (unique).
	Name string
	// Guarded marks a low-confidence component escorted by a shadow.
	Guarded bool
	// SendsTo lists the components this one sends internal messages to.
	SendsTo []string
	// InternalRate and ExternalRate drive its workload (messages/second;
	// defaults 2 and 0.5).
	InternalRate, ExternalRate float64
}

// MultiConfig assembles a generalized guarded-operation system.
type MultiConfig struct {
	// Components declares the topology.
	Components []Component
	// Seed drives all randomness.
	Seed int64
	// MinDelay and MaxDelay bound message delivery (defaults 1ms, 20ms).
	MinDelay, MaxDelay time.Duration
	// ATCoverage is the acceptance tests' detection probability
	// (default 1).
	ATCoverage float64
}

// MultiSystem is a running multi-component simulation.
type MultiSystem struct {
	inner *gmdcd.System
	ids   map[string]gmdcd.ComponentID
	names map[gmdcd.ComponentID]string
}

// NewMultiComponent assembles a generalized system.
func NewMultiComponent(cfg MultiConfig) (*MultiSystem, error) {
	ids := make(map[string]gmdcd.ComponentID, len(cfg.Components))
	names := make(map[gmdcd.ComponentID]string, len(cfg.Components))
	for i, c := range cfg.Components {
		id := gmdcd.ComponentID(i + 1)
		ids[c.Name] = id
		names[id] = c.Name
	}
	var test at.Test = at.Perfect()
	if cfg.ATCoverage > 0 && cfg.ATCoverage < 1 {
		test = at.Oracle{Coverage: cfg.ATCoverage}
	}
	topo := gmdcd.Topology{Test: test}
	for i, c := range cfg.Components {
		spec := gmdcd.ComponentSpec{
			ID:           gmdcd.ComponentID(i + 1),
			Guarded:      c.Guarded,
			InternalRate: c.InternalRate,
			ExternalRate: c.ExternalRate,
		}
		if spec.InternalRate == 0 {
			spec.InternalRate = 2
		}
		if spec.ExternalRate == 0 {
			spec.ExternalRate = 0.5
		}
		for _, peer := range c.SendsTo {
			spec.Peers = append(spec.Peers, ids[peer])
		}
		topo.Components = append(topo.Components, spec)
	}
	minD, maxD := cfg.MinDelay, cfg.MaxDelay
	if minD == 0 {
		minD = time.Millisecond
	}
	if maxD == 0 {
		maxD = 20 * time.Millisecond
	}
	inner, err := gmdcd.New(gmdcd.Config{
		Topology: topo, Seed: cfg.Seed, MinDelay: minD, MaxDelay: maxD,
	})
	if err != nil {
		return nil, err
	}
	return &MultiSystem{inner: inner, ids: ids, names: names}, nil
}

// Start arms the workload.
func (s *MultiSystem) Start() { s.inner.Start() }

// RunFor advances the simulation by virtual seconds.
func (s *MultiSystem) RunFor(seconds float64) { s.inner.RunFor(seconds) }

// Quiesce stops the workload and drains in-flight traffic.
func (s *MultiSystem) Quiesce() { s.inner.Quiesce() }

// ActivateSoftwareFault triggers the latent design fault in a guarded
// component's active version.
func (s *MultiSystem) ActivateSoftwareFault(name string) {
	if id, ok := s.ids[name]; ok {
		s.inner.CorruptActive(id)
	}
}

// AcceptUpgrade ends guarded operation for one component with its upgrade
// accepted: the shadow retires and the upgraded version becomes
// high-confidence (the generalized seamless disengagement).
func (s *MultiSystem) AcceptUpgrade(name string) bool {
	id, ok := s.ids[name]
	if !ok {
		return false
	}
	return s.inner.Accept(id)
}

// ComponentStatus describes one component's outcome.
type ComponentStatus struct {
	// Name identifies the component.
	Name string
	// Guarded reports whether it ran under guarded operation.
	Guarded bool
	// ShadowPromoted reports whether its trusted version took over.
	ShadowPromoted bool
	// Contaminated reports unresolved potential contamination.
	Contaminated bool
	// Checkpoints counts its Type-1 volatile checkpoints.
	Checkpoints int
}

// Status reports a component's state.
func (s *MultiSystem) Status(name string) ComponentStatus {
	id := s.ids[name]
	r := s.inner.Active(id)
	return ComponentStatus{
		Name:           name,
		Guarded:        s.inner.Shadow(id).Exists() || r.Promoted(),
		ShadowPromoted: r.Promoted(),
		Contaminated:   r.Dirty(),
		Checkpoints:    r.Checkpoints(),
	}
}

// MultiReport summarizes the run.
type MultiReport struct {
	// Recoveries counts software error recoveries.
	Recoveries int
	// Takeovers counts shadow promotions.
	Takeovers int
	// Rollbacks, RollForwards and ForcedRollbacks count the local and
	// reconciliation recovery decisions.
	Rollbacks, RollForwards, ForcedRollbacks int
	// ATsPassed counts successful acceptance tests.
	ATsPassed int
}

// Report summarizes the run so far.
func (s *MultiSystem) Report() MultiReport {
	st := s.inner.Stats()
	return MultiReport{
		Recoveries:      st.Recoveries,
		Takeovers:       st.Takeovers,
		Rollbacks:       st.Rollbacks,
		RollForwards:    st.RollForwards,
		ForcedRollbacks: st.ForcedRollbacks,
		ATsPassed:       st.ATsPassed,
	}
}
