package synergy

import "testing"

func multiCfg(seed int64) MultiConfig {
	return MultiConfig{
		Seed: seed,
		Components: []Component{
			{Name: "a", Guarded: true, SendsTo: []string{"b"}},
			{Name: "b", SendsTo: []string{"c"}},
			{Name: "c", SendsTo: []string{"a"}},
		},
	}
}

func TestMultiComponentSteadyState(t *testing.T) {
	sys, err := NewMultiComponent(multiCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(60)
	sys.Quiesce()
	if got := sys.Status("b").Checkpoints; got == 0 {
		t.Fatal("downstream component never checkpointed at contamination boundaries")
	}
	if sys.Report().ATsPassed == 0 {
		t.Fatal("no acceptance tests ran")
	}
}

func TestMultiComponentFaultRecovery(t *testing.T) {
	sys, err := NewMultiComponent(multiCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(20)
	sys.ActivateSoftwareFault("a")
	sys.RunFor(200)
	sys.Quiesce()
	st := sys.Status("a")
	if !st.ShadowPromoted {
		t.Fatal("shadow did not take over")
	}
	r := sys.Report()
	if r.Recoveries == 0 || r.Takeovers != 1 {
		t.Fatalf("report = %+v", r)
	}
	for _, n := range []string{"b", "c"} {
		if sys.Status(n).Contaminated {
			t.Fatalf("%s still contaminated at quiesce", n)
		}
	}
}

func TestMultiComponentValidation(t *testing.T) {
	cfg := multiCfg(3)
	cfg.Components[0].SendsTo = []string{"nowhere"}
	if _, err := NewMultiComponent(cfg); err == nil {
		t.Fatal("unknown peer should fail validation")
	}
	cfg = multiCfg(3)
	cfg.Components[0].Guarded = false
	if _, err := NewMultiComponent(cfg); err == nil {
		t.Fatal("no guarded component should fail validation")
	}
}

func TestMultiComponentUnknownNameIsSafe(t *testing.T) {
	sys, err := NewMultiComponent(multiCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.ActivateSoftwareFault("ghost") // no-op
	sys.RunFor(5)
	sys.Quiesce()
}

func TestMultiComponentAcceptUpgrade(t *testing.T) {
	sys, err := NewMultiComponent(multiCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(30)
	if !sys.AcceptUpgrade("a") {
		t.Fatal("AcceptUpgrade returned false")
	}
	if sys.AcceptUpgrade("a") {
		t.Fatal("second AcceptUpgrade should be a no-op")
	}
	if sys.AcceptUpgrade("ghost") {
		t.Fatal("unknown component should not accept")
	}
	sys.RunFor(60)
	sys.Quiesce()
	for _, n := range []string{"a", "b", "c"} {
		if sys.Status(n).Contaminated {
			t.Fatalf("%s contaminated after acceptance", n)
		}
	}
}
