#!/usr/bin/env bash
# bench.sh — run the repository's benchmark suite and record a machine-read-
# able snapshot, so the performance trajectory of the hot paths (event queue,
# codecs, campaign runner, whole-experiment regeneration) is tracked in-tree.
#
#   scripts/bench.sh               # quick pass (1 iteration per benchmark)
#   BENCHTIME=0.5s scripts/bench.sh  # statistically meaningful pass
#   BENCH_OUT=out.json scripts/bench.sh
#   scripts/bench.sh --print-out   # print the output path and exit
#
# The snapshot is written to BENCH_<UTC date>.json in the repository root. A
# snapshot is never overwritten: if today's file already exists, a -1, -2, …
# suffix is appended, so two runs on the same day both survive. BENCH_OUT
# names the file explicitly (no suffixing), BENCH_DIR redirects the snapshot
# out of the repository root, and BENCH_DATE pins the date stamp (the latter
# two exist mostly so check.sh can exercise the naming logic hermetically).
# The JSON format is documented in README.md "Benchmarks":
#
#   {
#     "date": "2026-08-06", "go": "go1.24.0", "gomaxprocs": 8,
#     "benchtime": "1x",
#     "benchmarks": [
#       {"package": "github.com/synergy-ft/synergy", "name": "BenchmarkFigure7",
#        "iterations": 1, "metrics": {"ns/op": 80915549, "B/op": 1234,
#        "allocs/op": 56, "min_ratio": 11.9}}
#     ]
#   }
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-1x}"
stamp="${BENCH_DATE:-$(date -u +%Y-%m-%d)}"
prefix="${BENCH_DIR:+${BENCH_DIR%/}/}"
if [[ -n "${BENCH_OUT:-}" ]]; then
    out="$BENCH_OUT"
else
    out="${prefix}BENCH_${stamp}.json"
    n=1
    while [[ -e "$out" ]]; do
        out="${prefix}BENCH_${stamp}-${n}.json"
        n=$((n + 1))
    done
fi

if [[ "${1:-}" == "--print-out" ]]; then
    echo "$out"
    exit 0
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench . -benchtime $benchtime (this runs the full suite once)"
go test -run '^$' -bench . -benchmem -benchtime "$benchtime" ./... | tee "$raw"

go_version="$(go env GOVERSION)"
gomaxprocs="$(go run ./scripts/internal/gomaxprocs 2>/dev/null || getconf _NPROCESSORS_ONLN)"

awk -v date="$stamp" -v gover="$go_version" \
    -v procs="$gomaxprocs" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", date, gover, procs, benchtime
    n = 0
}
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    iters = $2
    metrics = ""
    # Remaining fields come in (value, unit) pairs: ns/op, B/op, allocs/op,
    # and any custom ReportMetric units (min_ratio, p2_type1, ...).
    for (i = 3; i + 1 <= NF; i += 2) {
        if (metrics != "") metrics = metrics ", "
        metrics = metrics sprintf("\"%s\": %s", $(i + 1), $i)
    }
    if (n++) printf ","
    printf "\n    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"metrics\": {%s}}", pkg, name, iters, metrics
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "==> wrote $out ($(grep -c '"name"' "$out") benchmarks)"
