#!/usr/bin/env bash
# bench_diff.sh — compare two bench.sh snapshots and flag ns/op regressions.
#
#   scripts/bench_diff.sh old.json new.json        # default 15% threshold
#   THRESHOLD=0.25 scripts/bench_diff.sh a.json b.json
#   scripts/bench_diff.sh                          # two newest BENCH_*.json
#
# With no arguments the two most recent BENCH_*.json snapshots in the repo
# root are compared, ordered by date then same-day suffix (bench.sh never
# overwrites: the second run of a day is BENCH_<date>-1.json, and so on).
# The exit status is nonzero when any benchmark regressed past the threshold,
# so CI can choose whether regressions block. Single-iteration snapshots from
# `scripts/bench.sh` are noisy — treat the report as advisory unless the
# snapshots were produced with BENCHTIME set to a real duration.
set -euo pipefail

cd "$(dirname "$0")/.."

old="${1:-}" new="${2:-}"
if [[ -z "$old" || -z "$new" ]]; then
    mapfile -t snaps < <(
        for f in BENCH_*.json; do
            [[ -e "$f" ]] || continue
            s="${f#BENCH_}" s="${s%.json}"
            d="${s:0:10}" n="${s:11}"
            printf '%s %s %s\n' "$d" "${n:-0}" "$f"
        done | sort -k1,1 -k2,2n | awk '{print $3}' | tail -n 2
    )
    if (( ${#snaps[@]} < 2 )); then
        echo "bench_diff.sh: need two BENCH_*.json snapshots (or pass two paths)" >&2
        exit 2
    fi
    old="${snaps[0]}" new="${snaps[1]}"
fi

echo "==> bench diff: $old -> $new"
go run ./scripts/internal/benchdiff -threshold "${THRESHOLD:-0.15}" "$old" "$new"
