#!/usr/bin/env bash
# check.sh — the repository's full static + dynamic gate, run on every PR.
#
#   gofmt        formatting is canonical
#   go build     everything compiles
#   go vet       toolchain static analysis
#   synergy-lint protocol-aware analysis (see DESIGN.md "Code disciplines")
#   go test -race  full suite with the race detector patrolling the live
#                  middleware's transport and recovery paths and the parallel
#                  campaign runner's fan-out
#   fuzz smoke   each codec fuzz target runs for FUZZTIME (default 10s) on
#                top of its committed seed corpus, so decoder regressions
#                that only arbitrary bytes would catch still surface pre-merge
#   scenario matrix  the committed specs/ corpus runs through the scenario
#                engine (cmd/synergy-scenario) in both the simulator and the
#                live stack. Locally a short prefix keeps the gate fast;
#                SCENARIO_FULL=1 (set in CI) runs every spec in both modes.
#                Failed scenarios leave per-scenario trace + report JSON
#                under scenario-artifacts/ for CI to attach
#   crash wall   synergy-crashwall simulates a crash after every IO operation
#                of the durable commit/compact/truncate path and recovers
#                every disk state the crash could leave, asserting no
#                fsync-acked round is ever lost (bounded prefix locally,
#                every operation under SCENARIO_FULL=1); violations land in
#                crashwall-artifacts/ for CI to attach
#   chaos soak   synergy-chaos replays specs/030-chaos-soak.json (lossy/
#                duplicating/corrupting links, a partition, a P2
#                crash-restart from durable storage) and must end healthy
#                with a violation-free recovery line; on failure the
#                protocol trace lands in chaos-trace.txt for CI to attach
#                as an artifact. The run's final metrics snapshot always
#                lands in chaos-metrics.json (uploaded by CI), and the
#                spec's fault_counters_match expectation asserts the obs
#                counters agree with the injector's
#   cluster smoke  synergy-cluster runs a 10-node ring (7 components, 3
#                guarded with shadows) under link chaos in the deterministic
#                simulator; the membership-wide recovery line must be clean
#                and gossip fan-in bounded by fanout·rounds. SCENARIO_FULL=1
#                adds the 10-node live run and a 100-node simulator soak
#                with a mid-run software fault
#   metrics smoke  synergy-live is started with -metrics-addr 127.0.0.1:0
#                and its /metrics endpoint scraped once: the exposition
#                must be non-empty and well-typed
#   load smoke   synergy-load replays specs/120-poisson-load.json (open-loop
#                Poisson over zero-delay TCP): it must clear the spec's
#                msgs/sec floor with every probe delivered (obs counter ==
#                driver count); its JSON result snapshot lands in
#                load-result.json for CI to upload
#   bench smoke  every benchmark runs for one iteration, so a refactor that
#                breaks a benchmark (or reintroduces hot-path allocations
#                loud enough to fail an assertion) is caught before merge
#   bench diff   advisory ns/op comparison of the two newest committed
#                BENCH_*.json snapshots (never fails the gate)
#   bench naming bench.sh's snapshot-name logic is asserted hermetically:
#                same-day runs must suffix, never overwrite
#
# Usage: scripts/check.sh  (from anywhere inside the repository)
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

# The lint budget guards the shared-type-check + parallel-check design: the
# dataflow analyzers (detflow/lockorder/atomicmix) solve whole-program
# fixpoints, and the budget is 2x the pre-dataflow wall time, so an analyzer
# that re-type-checks or serializes the check phase fails loudly here rather
# than slowly taxing every PR. Override with LINT_BUDGET_SECONDS for slow
# machines.
lint_budget="${LINT_BUDGET_SECONDS:-4}"
echo "==> synergy-lint ./... (budget ${lint_budget}s)"
go build -o "$tmp/synergy-lint" ./cmd/synergy-lint
lint_start=$SECONDS
"$tmp/synergy-lint" ./...
lint_elapsed=$(( SECONDS - lint_start ))
if (( lint_elapsed > lint_budget )); then
    echo "synergy-lint took ${lint_elapsed}s, over the ${lint_budget}s budget (2x the pre-dataflow baseline)" >&2
    exit 1
fi

echo "==> go test -race ./..."
go test -race ./...

fuzztime="${FUZZTIME:-10s}"
echo "==> fuzz smoke ($fuzztime per target)"
fuzz_targets=(
    "./internal/msg FuzzDecode"
    "./internal/msg FuzzDecodeSlice"
    "./internal/msg FuzzRoundTrip"
    "./internal/checkpoint FuzzDecode"
    "./internal/checkpoint FuzzRoundTrip"
    "./internal/storage FuzzStableLog"
    "./internal/scenario FuzzScenarioSpec"
)
for entry in "${fuzz_targets[@]}"; do
    pkg="${entry% *}" target="${entry#* }"
    echo "    $pkg $target"
    go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$fuzztime" > /dev/null
done

# The scenario matrix runs the committed corpus through both execution
# paths. Live runs cost wall-clock seconds apiece, so the local gate runs a
# short prefix and CI (SCENARIO_FULL=1) runs everything; either way a failed
# scenario drops its trace and report under scenario-artifacts/.
if [[ -n "${SCENARIO_FULL:-}" ]]; then
    echo "==> scenario matrix (full corpus, sim + live)"
    go run ./cmd/synergy-scenario -dir specs -workers 4 -artifacts scenario-artifacts
else
    echo "==> scenario matrix smoke (corpus prefix; SCENARIO_FULL=1 runs all)"
    go run ./cmd/synergy-scenario -dir specs -prefix 3 -workers 4 -artifacts scenario-artifacts
fi

# The crash wall explores every IO-op crash point of the durable commit path
# and recovers every post-crash disk state the strict model allows. Locally a
# bounded prefix keeps the gate instant; CI (SCENARIO_FULL=1) explores every
# operation. A red wall leaves crashwall-artifacts/crashwall-violations.json
# for CI to attach.
if [[ -n "${SCENARIO_FULL:-}" ]]; then
    echo "==> crash wall (every durable-path crash point)"
    go run ./cmd/synergy-crashwall -artifacts crashwall-artifacts
else
    echo "==> crash wall smoke (first 25 IO ops; SCENARIO_FULL=1 explores all)"
    go run ./cmd/synergy-crashwall -max-ops 25 -artifacts crashwall-artifacts
fi

echo "==> chaos soak smoke (replays specs/030-chaos-soak.json live)"
go run ./cmd/synergy-chaos -spec specs/030-chaos-soak.json -metrics-out chaos-metrics.json > /dev/null

# The cluster smoke soaks the N-node layer (gmdcd topology × time-based
# checkpointing × gossip dissemination, DESIGN.md §16): a 10-node ring under
# lossy/duplicating/jittery links must end with a clean membership-wide
# recovery line and per-node gossip fan-in within the fanout·rounds bound.
# Locally the deterministic simulator keeps the stage instant; CI
# (SCENARIO_FULL=1) adds the real-goroutine 10-node live run and a 100-node
# simulator soak on top (the full scenario matrix above already exercises
# the committed cluster specs 140/150/160 in the same configuration).
echo "==> cluster smoke (10-node sim ring under chaos)"
go build -o "$tmp/synergy-cluster" ./cmd/synergy-cluster
"$tmp/synergy-cluster" -components 7 -guarded 3 -duration 700ms \
    -drop 0.02 -duplicate 0.02 -max-extra-delay 1ms > /dev/null
if [[ -n "${SCENARIO_FULL:-}" ]]; then
    echo "==> cluster soak (10-node live + 100-node sim)"
    "$tmp/synergy-cluster" -mode live -components 7 -guarded 3 -duration 900ms \
        -drop 0.02 -duplicate 0.02 -max-extra-delay 1ms > /dev/null
    "$tmp/synergy-cluster" -components 93 -guarded 7 -duration 800ms \
        -internal-rate 20 -drop 0.01 -duplicate 0.01 -max-extra-delay 500us \
        -corrupt-at 500ms > /dev/null
fi

echo "==> metrics smoke (synergy-live serves /metrics; one scrape must be non-empty)"
go build -o "$tmp/synergy-live" ./cmd/synergy-live
"$tmp/synergy-live" -duration 1500ms -metrics-addr 127.0.0.1:0 > "$tmp/live.out" &
live_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr="$(sed -n 's/^metrics listening on //p' "$tmp/live.out")"
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    kill "$live_pid" 2>/dev/null || true
    echo "synergy-live never reported its metrics address:" >&2
    cat "$tmp/live.out" >&2
    exit 1
fi
go run ./scripts/internal/scrape "http://$addr/metrics" "# TYPE synergy_live_msgs_sent_total counter"
wait "$live_pid"

echo "==> load smoke (synergy-load replays specs/120-poisson-load.json)"
# The smoke's whole configuration — schedule, rate, duration, the msgs/sec
# floor and the all-delivered assertion — lives in the committed spec, so
# this stage, the scenario matrix and any local repro run the same load.
# The floor is deliberately far under the transport's measured capacity so
# only a real regression (or a stall) trips it. The JSON result snapshot is
# uploaded by CI alongside the bench snapshots.
go run ./cmd/synergy-load -spec specs/120-poisson-load.json -out load-result.json > /dev/null

echo "==> bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "==> bench diff (advisory: ns/op movement between the two newest snapshots)"
scripts/bench_diff.sh || echo "    (advisory only — single-iteration snapshots are noisy; see bench_diff.sh)"

echo "==> bench snapshot naming (same-day runs suffix, never overwrite)"
first="$(BENCH_DIR="$tmp" BENCH_DATE=2026-01-01 scripts/bench.sh --print-out)"
if [[ "$first" != "$tmp/BENCH_2026-01-01.json" ]]; then
    echo "bench.sh --print-out named $first, want $tmp/BENCH_2026-01-01.json" >&2
    exit 1
fi
touch "$tmp/BENCH_2026-01-01.json" "$tmp/BENCH_2026-01-01-1.json"
second="$(BENCH_DIR="$tmp" BENCH_DATE=2026-01-01 scripts/bench.sh --print-out)"
if [[ "$second" != "$tmp/BENCH_2026-01-01-2.json" ]]; then
    echo "bench.sh same-day run named $second, want $tmp/BENCH_2026-01-01-2.json" >&2
    exit 1
fi

echo "==> all checks passed"
