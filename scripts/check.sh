#!/usr/bin/env bash
# check.sh — the repository's full static + dynamic gate, run on every PR.
#
#   gofmt        formatting is canonical
#   go build     everything compiles
#   go vet       toolchain static analysis
#   synergy-lint protocol-aware analysis (see DESIGN.md "Code disciplines")
#   go test -race  full suite with the race detector patrolling the live
#                  middleware's transport and recovery paths and the parallel
#                  campaign runner's fan-out
#   fuzz smoke   each codec fuzz target runs for FUZZTIME (default 10s) on
#                top of its committed seed corpus, so decoder regressions
#                that only arbitrary bytes would catch still surface pre-merge
#   chaos soak   a seeded synergy-chaos run (lossy/duplicating/corrupting
#                links, a partition, a P2 crash-restart from durable storage)
#                must end healthy with a violation-free recovery line; on
#                failure the protocol trace lands in chaos-trace.txt for CI
#                to attach as an artifact
#   bench smoke  every benchmark runs for one iteration, so a refactor that
#                breaks a benchmark (or reintroduces hot-path allocations
#                loud enough to fail an assertion) is caught before merge
#   bench naming bench.sh's snapshot-name logic is asserted hermetically:
#                same-day runs must suffix, never overwrite
#
# Usage: scripts/check.sh  (from anywhere inside the repository)
set -euo pipefail

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> synergy-lint ./..."
go run ./cmd/synergy-lint ./...

echo "==> go test -race ./..."
go test -race ./...

fuzztime="${FUZZTIME:-10s}"
echo "==> fuzz smoke ($fuzztime per target)"
fuzz_targets=(
    "./internal/msg FuzzDecode"
    "./internal/msg FuzzDecodeSlice"
    "./internal/msg FuzzRoundTrip"
    "./internal/checkpoint FuzzDecode"
    "./internal/checkpoint FuzzRoundTrip"
    "./internal/storage FuzzStableLog"
)
for entry in "${fuzz_targets[@]}"; do
    pkg="${entry% *}" target="${entry#* }"
    echo "    $pkg $target"
    go test "$pkg" -run '^$' -fuzz "^${target}\$" -fuzztime "$fuzztime" > /dev/null
done

echo "==> chaos soak smoke (seeded: faults, partition, crash-restart)"
go run ./cmd/synergy-chaos -seed 7 -duration 1500ms > /dev/null

echo "==> bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "==> bench snapshot naming (same-day runs suffix, never overwrite)"
first="$(BENCH_DIR="$tmp" BENCH_DATE=2026-01-01 scripts/bench.sh --print-out)"
if [[ "$first" != "$tmp/BENCH_2026-01-01.json" ]]; then
    echo "bench.sh --print-out named $first, want $tmp/BENCH_2026-01-01.json" >&2
    exit 1
fi
touch "$tmp/BENCH_2026-01-01.json" "$tmp/BENCH_2026-01-01-1.json"
second="$(BENCH_DIR="$tmp" BENCH_DATE=2026-01-01 scripts/bench.sh --print-out)"
if [[ "$second" != "$tmp/BENCH_2026-01-01-2.json" ]]; then
    echo "bench.sh same-day run named $second, want $tmp/BENCH_2026-01-01-2.json" >&2
    exit 1
fi

echo "==> all checks passed"
