#!/usr/bin/env bash
# check.sh — the repository's full static + dynamic gate, run on every PR.
#
#   gofmt        formatting is canonical
#   go build     everything compiles
#   go vet       toolchain static analysis
#   synergy-lint protocol-aware analysis (see DESIGN.md "Code disciplines")
#   go test -race  full suite with the race detector patrolling the live
#                  middleware's transport and recovery paths and the parallel
#                  campaign runner's fan-out
#   bench smoke  every benchmark runs for one iteration, so a refactor that
#                breaks a benchmark (or reintroduces hot-path allocations
#                loud enough to fail an assertion) is caught before merge
#
# Usage: scripts/check.sh  (from anywhere inside the repository)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> synergy-lint ./..."
go run ./cmd/synergy-lint ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null

echo "==> all checks passed"
