// Command benchdiff compares two bench.sh JSON snapshots and reports per-
// benchmark ns/op movement. Benchmarks whose ns/op regressed by more than
// the threshold (default 15%) are flagged and make the exit status nonzero;
// callers that only want the report (check.sh's non-fatal step) ignore the
// status. Benchmarks present in only one snapshot are listed but never
// flagged — an added or deleted benchmark is not a regression.
//
// Usage:
//
//	benchdiff [-threshold 0.15] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type snapshot struct {
	Date       string      `json:"date"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Package string             `json:"package"`
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "flag ns/op regressions above this fraction")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] old.json new.json")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(oldPath, newPath string, threshold float64) error {
	oldSnap, err := load(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return err
	}

	oldNs := index(oldSnap)
	newNs := index(newSnap)

	keys := make([]string, 0, len(oldNs))
	for k := range oldNs {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regressions []string
	for _, k := range keys {
		before := oldNs[k]
		after, ok := newNs[k]
		if !ok {
			fmt.Printf("  gone      %-40s (was %.0f ns/op)\n", k, before)
			continue
		}
		delete(newNs, k)
		if before <= 0 {
			continue
		}
		delta := (after - before) / before
		mark := "  "
		if delta > threshold {
			mark = "!!"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", k, before, after, 100*delta))
		}
		fmt.Printf("%s %+7.1f%%  %-40s %.0f -> %.0f ns/op\n", mark, 100*delta, k, before, after)
	}
	added := make([]string, 0, len(newNs))
	for k := range newNs {
		added = append(added, k)
	}
	sort.Strings(added)
	for _, k := range added {
		fmt.Printf("  new       %-40s %.0f ns/op\n", k, newNs[k])
	}

	if len(regressions) > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%% ns/op:\n", len(regressions), 100*threshold)
		for _, r := range regressions {
			fmt.Println("  " + r)
		}
		return fmt.Errorf("%d regression(s) over threshold", len(regressions))
	}
	fmt.Printf("\nno ns/op regression over %.0f%% (%d benchmarks compared)\n", 100*threshold, len(keys))
	return nil
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// index maps "package.Name" to ns/op; single-iteration noise is the caller's
// problem (check.sh treats the report as advisory).
func index(s snapshot) map[string]float64 {
	m := make(map[string]float64, len(s.Benchmarks))
	for _, b := range s.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			m[b.Package+"."+b.Name] = ns
		}
	}
	return m
}
