// Command gomaxprocs prints runtime.GOMAXPROCS(0): scripts/bench.sh records
// it in the benchmark snapshot so numbers are comparable across machines.
package main

import (
	"fmt"
	"runtime"
)

func main() {
	fmt.Println(runtime.GOMAXPROCS(0))
}
