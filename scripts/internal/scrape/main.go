// Command scrape fetches a URL once and asserts the response looks like a
// healthy metrics exposition: status 200, a non-empty body, and every extra
// argument present as a substring. check.sh uses it to smoke-test the
// /metrics endpoint without depending on curl being installed.
//
// Usage:
//
//	scrape <url> [required-substring ...]
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: scrape <url> [required-substring ...]")
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2:]); err != nil {
		fmt.Fprintln(os.Stderr, "scrape:", err)
		os.Exit(1)
	}
}

func run(url string, want []string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %s", url, resp.Status)
	}
	if len(body) == 0 {
		return fmt.Errorf("%s: empty body", url)
	}
	for _, w := range want {
		if !strings.Contains(string(body), w) {
			return fmt.Errorf("%s: body (%d bytes) missing %q", url, len(body), w)
		}
	}
	fmt.Printf("scraped %s: %d bytes, %d lines\n", url, len(body), strings.Count(string(body), "\n"))
	return nil
}
