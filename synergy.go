// Package synergy is a reproduction of "Synergistic Coordination between
// Software and Hardware Fault Tolerance Techniques" (Tai, Tso, Alkalai,
// Chau, Sanders — DSN 2001): a three-node distributed system that tolerates
// software design faults and hardware faults simultaneously by coordinating
// two checkpointing protocols.
//
// The message-driven confidence-driven (MDCD) protocol contains software
// design faults: a low-confidence active process is escorted by a
// high-confidence shadow, volatile checkpoints are established only at
// message events that change confidence in a process state, and acceptance
// tests validate external messages. The time-based (TB) checkpointing
// protocol of Neves and Fuchs tolerates hardware faults: stable-storage
// checkpoints on approximately synchronized timers with blocking periods
// instead of message-exchange coordination. The paper's contribution — and
// this library's core — is the adaptation that lets the two run concurrently
// without interfering: stable checkpoint contents are chosen by the MDCD
// dirty bit, in-progress writes respond to confidence changes during the
// blocking period, and knowledge updates are gated by the stable checkpoint
// sequence number Ndc.
//
// Two runtimes execute the same protocol core: a deterministic discrete-
// event simulator (NewSimulation) used by the experiment harness that
// regenerates every table and figure of the paper, and a concurrent
// goroutine middleware (NewMiddleware) with real timers and channels.
package synergy

import (
	"fmt"
	"time"

	"github.com/synergy-ft/synergy/internal/at"
	"github.com/synergy-ft/synergy/internal/coord"
	"github.com/synergy-ft/synergy/internal/msg"
	"github.com/synergy-ft/synergy/internal/trace"
	"github.com/synergy-ft/synergy/internal/vtime"
)

// Scheme selects which fault-tolerance composition a simulation runs.
type Scheme int

// Composition schemes.
const (
	// Coordinated is the paper's contribution: modified MDCD + adapted TB.
	Coordinated Scheme = iota + 1
	// WriteThrough is the baseline that writes every Type-2 checkpoint
	// through to stable storage (no TB timers).
	WriteThrough
	// Naive runs unmodified TB beside MDCD (the Figure 4 failure case).
	Naive
	// TBOnly runs time-based checkpointing with no guarded operation.
	TBOnly
	// MDCDOnly runs software fault tolerance with volatile checkpoints
	// only.
	MDCDOnly
)

// String implements fmt.Stringer.
func (s Scheme) String() string { return coord.Scheme(s).String() }

// Process identifies one of the three protocol participants.
type Process int

// The three processes of the guarded-operation architecture.
const (
	// ActiveP1 is the active process of the low-confidence version.
	ActiveP1 Process = Process(msg.P1Act)
	// ShadowP1 is the escorting shadow of the high-confidence version.
	ShadowP1 = Process(msg.P1Sdw)
	// PeerP2 is the second, high-confidence application component.
	PeerP2 = Process(msg.P2)
)

// String implements fmt.Stringer.
func (p Process) String() string { return msg.ProcID(p).String() }

// Config assembles a simulation.
type Config struct {
	// Scheme selects the composition (default Coordinated).
	Scheme Scheme
	// Seed drives all randomness; equal configs with equal seeds replay
	// bit-identical runs.
	Seed int64
	// CheckpointInterval is the TB interval Δ (default 10s).
	CheckpointInterval time.Duration
	// ClockDeviation is δ, the maximum mutual clock deviation after a
	// resynchronization (default 4ms).
	ClockDeviation time.Duration
	// ClockDriftRate is ρ, in seconds of error per second (default 1e-5).
	ClockDriftRate float64
	// MinDelay and MaxDelay bound message delivery (defaults 200µs, 20ms).
	MinDelay, MaxDelay time.Duration
	// InternalRate1/ExternalRate1 drive component 1's traffic, in
	// messages per second (defaults 1 and 0.05).
	InternalRate1, ExternalRate1 float64
	// InternalRate2/ExternalRate2 drive component 2's traffic.
	InternalRate2, ExternalRate2 float64
	// ATCoverage is the acceptance tests' detection probability for
	// corrupted payloads (default 1: a perfect oracle).
	ATCoverage float64
	// MaxRepair is the longest node downtime the deployment expects; it
	// sizes stable-storage round retention so a CrashNode/RepairNode
	// cycle of up to this length still finds the common recovery round.
	// Zero supports crash-restart (InjectHardwareFault) only.
	MaxRepair time.Duration
	// Trace records protocol events for timeline rendering.
	Trace bool
}

// System is a running simulation of the three-node system.
type System struct {
	inner *coord.System
}

// NewSimulation assembles a simulated system. Zero config fields take the
// documented defaults.
func NewSimulation(cfg Config) (*System, error) {
	inner, err := coord.NewSystem(cfg.toInternal())
	if err != nil {
		return nil, err
	}
	return &System{inner: inner}, nil
}

func (cfg Config) toInternal() coord.Config {
	scheme := coord.Scheme(cfg.Scheme)
	if cfg.Scheme == 0 {
		scheme = coord.Coordinated
	}
	c := coord.DefaultConfig(scheme, cfg.Seed)
	c.TraceEnabled = cfg.Trace
	if cfg.CheckpointInterval > 0 {
		c.CheckpointInterval = cfg.CheckpointInterval
	}
	if cfg.ClockDeviation > 0 {
		c.Clock.MaxDeviation = cfg.ClockDeviation
	}
	if cfg.ClockDriftRate > 0 {
		c.Clock.DriftRate = cfg.ClockDriftRate
	}
	if cfg.MinDelay > 0 {
		c.Net.MinDelay = cfg.MinDelay
	}
	if cfg.MaxDelay > 0 {
		c.Net.MaxDelay = cfg.MaxDelay
	}
	if cfg.InternalRate1 > 0 {
		c.Workload1.InternalRate = cfg.InternalRate1
	}
	if cfg.ExternalRate1 > 0 {
		c.Workload1.ExternalRate = cfg.ExternalRate1
	}
	if cfg.InternalRate2 > 0 {
		c.Workload2.InternalRate = cfg.InternalRate2
	}
	if cfg.ExternalRate2 > 0 {
		c.Workload2.ExternalRate = cfg.ExternalRate2
	}
	if cfg.ATCoverage > 0 && cfg.ATCoverage < 1 {
		c.Test = at.Oracle{Coverage: cfg.ATCoverage}
	}
	c.MaxRepair = cfg.MaxRepair
	return c
}

// Start arms the workload and checkpoint timers.
func (s *System) Start() { s.inner.Start() }

// RunFor advances the simulation by the given number of virtual seconds.
func (s *System) RunFor(seconds float64) { s.inner.RunFor(seconds) }

// Quiesce stops the workload and drains all in-flight activity.
func (s *System) Quiesce() { s.inner.Quiesce() }

// Now returns the current virtual time in seconds.
func (s *System) Now() float64 { return s.inner.Engine().Now().Seconds() }

// InjectHardwareFault crashes the node hosting the given process and runs
// hardware error recovery (every process rolls back to the stable
// checkpoint line; unacknowledged messages are re-sent).
func (s *System) InjectHardwareFault(p Process) error {
	node, ok := nodeOfProcess(p)
	if !ok {
		return fmt.Errorf("synergy: unknown process %v", p)
	}
	return s.inner.InjectHardwareFault(node)
}

// CrashNode fails the node hosting the given process: its volatile state is
// lost and it neither computes nor communicates until RepairNode. The
// survivors keep running (and keep checkpointing).
func (s *System) CrashNode(p Process) error {
	node, ok := nodeOfProcess(p)
	if !ok {
		return fmt.Errorf("synergy: unknown process %v", p)
	}
	s.inner.CrashNode(node)
	return nil
}

// RepairNode brings a crashed node back and runs hardware error recovery;
// the rollback distance includes the survivors' work discarded because of
// the downtime.
func (s *System) RepairNode(p Process) error {
	node, ok := nodeOfProcess(p)
	if !ok {
		return fmt.Errorf("synergy: unknown process %v", p)
	}
	return s.inner.RepairNode(node)
}

func nodeOfProcess(p Process) (msg.NodeID, bool) {
	node, ok := map[Process]msg.NodeID{ActiveP1: 1, ShadowP1: 2, PeerP2: 3}[p]
	return node, ok
}

// ActivateSoftwareFault triggers the design fault in the low-confidence
// version: the active process's state silently becomes erroneous, to be
// caught by a later acceptance test (only while guarded operation lasts —
// committing the upgrade removes the guard).
func (s *System) ActivateSoftwareFault() { s.inner.ActivateSoftwareFault() }

// CommitUpgrade accepts the upgraded version after sufficient onboard
// execution time: guarded operation ends, the shadow retires, all dirty bits
// take a constant value of zero and the adapted TB protocol becomes
// equivalent to the original — the seamless disengagement the paper
// describes. It reports false if guarded operation already ended.
func (s *System) CommitUpgrade() bool { return s.inner.CommitUpgrade() }

// Report summarizes a run's dependability outcomes.
type Report struct {
	// VirtualSeconds is the simulated time elapsed.
	VirtualSeconds float64
	// HardwareFaults and SoftwareRecoveries count handled faults.
	HardwareFaults, SoftwareRecoveries int
	// Unrecoverable counts faults the scheme could not mask.
	Unrecoverable int
	// MeanRollbackSeconds is the average computation undone per process
	// per hardware fault.
	MeanRollbackSeconds float64
	// MaxRollbackSeconds is the worst observed rollback distance.
	MaxRollbackSeconds float64
	// ShadowPromoted reports whether the shadow took over the active role.
	ShadowPromoted bool
	// Failed carries the reason for an unrecoverable condition, if any.
	Failed string
}

// Report summarizes the run so far.
func (s *System) Report() Report {
	m := s.inner.Metrics()
	r := Report{
		VirtualSeconds:      s.Now(),
		HardwareFaults:      m.HWFaults,
		SoftwareRecoveries:  m.SWRecoveries,
		Unrecoverable:       m.UnrecoverableSW + m.UnrecoverableHW,
		MeanRollbackSeconds: m.RollbackDistance.Mean(),
		MaxRollbackSeconds:  m.RollbackDistance.Max(),
	}
	if p := s.inner.Process(msg.P1Sdw); p != nil {
		r.ShadowPromoted = p.Promoted()
	}
	if failed, why := s.inner.Failed(); failed {
		r.Failed = why
	}
	return r
}

// CheckInvariants evaluates the paper's global-state properties — validity-
// concerned consistency and recoverability — over the current recovery line
// and returns a description of each violation (empty means the line is
// sound). It errors until the first complete checkpoint round exists.
func (s *System) CheckInvariants() ([]string, error) {
	line, err := s.inner.StableLine()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, v := range line.Check() {
		out = append(out, v.String())
	}
	return out, nil
}

// Timeline renders the recorded protocol events as per-process ASCII lanes
// (requires Config.Trace).
func (s *System) Timeline(columns int) string {
	rec := s.inner.Recorder()
	if rec == nil {
		return "(tracing disabled; set Config.Trace)"
	}
	return trace.Timeline{From: vtime.Zero, To: s.inner.Engine().Now(), Columns: columns}.Render(rec)
}

// ShadowConverged reports whether the active and shadow replicas hold equal
// states; meaningful at quiescent points.
func (s *System) ShadowConverged() bool { return s.inner.ReplicasConverged() }

// StableRounds returns the number of committed stable-storage checkpoint
// rounds for the given process (0 if the scheme keeps none).
func (s *System) StableRounds(p Process) uint64 {
	cp := s.inner.Checkpointer(msg.ProcID(p))
	if cp == nil {
		return 0
	}
	return cp.Ndc()
}
