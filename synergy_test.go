package synergy

import (
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewSimulation(Config{Seed: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(60)
	if err := sys.InjectHardwareFault(PeerP2); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(60)
	sys.ActivateSoftwareFault()
	sys.RunFor(300)
	sys.Quiesce()

	r := sys.Report()
	if r.Failed != "" {
		t.Fatalf("run failed: %s", r.Failed)
	}
	if r.HardwareFaults != 1 {
		t.Fatalf("HardwareFaults = %d", r.HardwareFaults)
	}
	if r.SoftwareRecoveries != 1 || !r.ShadowPromoted {
		t.Fatalf("software recovery missing: %+v", r)
	}
	if r.MeanRollbackSeconds <= 0 || r.MeanRollbackSeconds > 60 {
		t.Fatalf("MeanRollbackSeconds = %v", r.MeanRollbackSeconds)
	}
	if tl := sys.Timeline(60); !strings.Contains(tl, "P1act") {
		t.Fatalf("timeline missing lanes:\n%s", tl)
	}
}

func TestDefaultsAndOverrides(t *testing.T) {
	sys, err := NewSimulation(Config{
		Seed:               2,
		Scheme:             Coordinated,
		CheckpointInterval: 5 * time.Second,
		InternalRate1:      2,
		ExternalRate1:      0.2,
		ATCoverage:         0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(40)
	if got := sys.StableRounds(PeerP2); got < 6 {
		t.Fatalf("StableRounds = %d, want ≥6 with Δ=5s over 40s", got)
	}
}

func TestInvariantsCleanOnCoordinated(t *testing.T) {
	sys, err := NewSimulation(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(60)
	vs, err := sys.CheckInvariants()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestShadowConvergenceAtQuiescence(t *testing.T) {
	sys, err := NewSimulation(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(50)
	sys.Quiesce()
	if !sys.ShadowConverged() {
		t.Fatal("replicas diverged at quiescence")
	}
}

func TestTimelineWithoutTrace(t *testing.T) {
	sys, err := NewSimulation(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Timeline(40); !strings.Contains(got, "disabled") {
		t.Fatalf("Timeline without trace = %q", got)
	}
}

func TestUnknownProcessFault(t *testing.T) {
	sys, err := NewSimulation(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.InjectHardwareFault(Process(99)); err == nil {
		t.Fatal("unknown process should error")
	}
}

func TestSchemeAndProcessStrings(t *testing.T) {
	if Coordinated.String() != "coordinated" || WriteThrough.String() != "write-through" {
		t.Fatal("scheme names wrong")
	}
	if ActiveP1.String() != "P1act" || ShadowP1.String() != "P1sdw" || PeerP2.String() != "P2" {
		t.Fatal("process names wrong")
	}
}

func TestExperimentAccess(t *testing.T) {
	ids := Experiments()
	if len(ids) < 10 {
		t.Fatalf("Experiments() = %v", ids)
	}
	r, err := RunExperiment("table1", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "table1" || !strings.Contains(r.String(), "Blocking period") {
		t.Fatalf("result = %+v", r)
	}
	if _, err := RunExperiment("nope", 1, true); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestMiddlewareFacade(t *testing.T) {
	mw, err := NewMiddleware(MiddlewareConfig{Seed: 7, ExternalRate: 40})
	if err != nil {
		t.Fatal(err)
	}
	mw.Start()
	time.Sleep(300 * time.Millisecond)
	if err := mw.InjectHardwareFault(PeerP2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	mw.ActivateSoftwareFault()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !mw.Report().ShadowPromoted {
		time.Sleep(20 * time.Millisecond)
	}
	mw.Stop()
	r := mw.Report()
	if r.Failed != "" {
		t.Fatalf("middleware failed: %s", r.Failed)
	}
	if r.HardwareFaults != 1 || !r.ShadowPromoted {
		t.Fatalf("report = %+v", r)
	}
	if mw.StableRounds(ActiveP1) == 0 {
		t.Fatal("no stable rounds committed")
	}
}

func TestCrashRepairViaFacade(t *testing.T) {
	sys, err := NewSimulation(Config{Seed: 8, MaxRepair: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunFor(60)
	if err := sys.CrashNode(PeerP2); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(40)
	if err := sys.RepairNode(PeerP2); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(30)
	sys.Quiesce()
	r := sys.Report()
	if r.Failed != "" {
		t.Fatalf("run failed: %s", r.Failed)
	}
	if r.HardwareFaults != 1 {
		t.Fatalf("HardwareFaults = %d", r.HardwareFaults)
	}
	if r.MaxRollbackSeconds < 40 {
		t.Fatalf("rollback %vs should cover the downtime", r.MaxRollbackSeconds)
	}
	if err := sys.CrashNode(Process(99)); err == nil {
		t.Fatal("unknown process should error")
	}
	if err := sys.RepairNode(Process(99)); err == nil {
		t.Fatal("unknown process should error")
	}
}
